//! Typed metric registry: counters, gauges, and log2-bucketed histograms.

use std::collections::BTreeMap;

/// Number of log2 buckets in a [`Histogram`]. Bucket `b` counts samples
/// `v` with `floor(log2(v)) + 1 == b` (bucket 0 counts exact zeros), so
/// the full `u64` range fits.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram over unsigned integer samples.
///
/// Bucketing is exact and platform-independent (pure integer math), so a
/// histogram built from a deterministic sample stream is itself
/// deterministic. Summary statistics (`count`, `sum`, `min`, `max`) are
/// tracked alongside the buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts; see [`HISTOGRAM_BUCKETS`] for the layout.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Bucket index for a sample value.
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Record `n` identical samples at once (bulk import of a
    /// pre-binned distribution).
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = Self::bucket_of(value);
        if let Some(slot) = self.buckets.get_mut(b) {
            *slot += n;
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the log2 bucket holding the nearest-rank
    /// quantile `q` in `[0, 1]`: the tightest value `v` such that at
    /// least a `q` fraction of samples are `<= v`, given only the
    /// bucketed distribution (clamped to the exact recorded `max`).
    /// Returns 0 for an empty histogram. Deterministic, like the
    /// buckets it reads.
    pub fn percentile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                if b == 0 {
                    return 0;
                }
                // Bucket b spans [2^(b-1), 2^b - 1].
                let upper = (1u128 << b) - 1;
                return upper.min(self.max as u128) as u64;
            }
        }
        self.max
    }

    /// Fold another histogram into this one (elementwise bucket add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The value payload of a metric entry.
///
/// The `Histogram` variant dominates the enum's size (its fixed bucket
/// array), but metrics are stored once per *name* in a registry and
/// never moved in bulk, so indirection would cost more than it saves.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonically accumulated unsigned count.
    Counter(u64),
    /// Point-in-time measurement; last write wins.
    Gauge(f64),
    /// Distribution of integer samples.
    Histogram(Histogram),
}

/// One named metric: a value plus its unit and determinism class.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Unit label, e.g. `"cycles"`, `"bytes"`, `"ratio"`.
    pub unit: &'static str,
    /// Diagnostic metrics depend on runtime scheduling (e.g. per-worker
    /// utilization) and are excluded from the deterministic report
    /// stream; see the crate docs.
    pub diagnostic: bool,
    /// The recorded value.
    pub value: MetricValue,
}

/// A name-ordered registry of [`Metric`]s.
///
/// Iteration order is the `BTreeMap` name order, so rendering a registry
/// is deterministic regardless of insertion order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    entries: BTreeMap<String, Metric>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, unit: &'static str, delta: u64) {
        self.counter_entry(name, unit, false, delta);
    }

    /// Diagnostic-class variant of [`Metrics::counter_add`].
    pub fn diagnostic_counter_add(&mut self, name: &str, unit: &'static str, delta: u64) {
        self.counter_entry(name, unit, true, delta);
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, unit: &'static str, value: f64) {
        self.entries.insert(
            // lint: allow(h2): metric names are owned map keys;
            // recording runs per report flush, not per sample
            name.to_string(),
            Metric { unit, diagnostic: false, value: MetricValue::Gauge(value) },
        );
    }

    /// Diagnostic-class variant of [`Metrics::gauge_set`].
    pub fn diagnostic_gauge_set(&mut self, name: &str, unit: &'static str, value: f64) {
        self.entries.insert(
            // lint: allow(h2): owned map key — see gauge_set
            name.to_string(),
            Metric { unit, diagnostic: true, value: MetricValue::Gauge(value) },
        );
    }

    /// Record `value` into the histogram `name`, creating it if needed.
    pub fn observe(&mut self, name: &str, unit: &'static str, value: u64) {
        self.observe_n(name, unit, value, 1);
    }

    /// Record `n` identical samples into the histogram `name`.
    pub fn observe_n(&mut self, name: &str, unit: &'static str, value: u64, n: u64) {
        // lint: allow(h2): owned map key — see gauge_set
        let entry = self.entries.entry(name.to_string()).or_insert_with(|| Metric {
            unit,
            diagnostic: false,
            value: MetricValue::Histogram(Histogram::default()),
        });
        if let MetricValue::Histogram(h) = &mut entry.value {
            h.observe_n(value, n);
        }
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.get(name)
    }

    /// Fold another registry into this one.
    ///
    /// Counters and histograms accumulate; gauges take `other`'s value.
    /// Worker shards record into private registries and the caller merges
    /// them in chunk-index order, which keeps the result independent of
    /// scheduling.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, metric) in other.entries.iter() {
            match self.entries.get_mut(name) {
                None => {
                    self.entries.insert(name.clone(), metric.clone());
                }
                Some(existing) => match (&mut existing.value, &metric.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (_, _) => *existing = metric.clone(),
                },
            }
        }
    }

    fn counter_entry(&mut self, name: &str, unit: &'static str, diagnostic: bool, delta: u64) {
        // lint: allow(h2): owned map key — see gauge_set
        let entry = self.entries.entry(name.to_string()).or_insert_with(|| Metric {
            unit,
            diagnostic,
            value: MetricValue::Counter(0),
        });
        if let MetricValue::Counter(c) = &mut entry.value {
            *c += delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn percentile_upper_bound_brackets_the_distribution() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile_upper_bound(0.99), 0, "empty histogram");
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Median rank 50 lands in bucket 6 ([32, 63]); p99 rank 99 in
        // bucket 7, clamped to the recorded max of 100.
        assert_eq!(h.percentile_upper_bound(0.5), 63);
        assert_eq!(h.percentile_upper_bound(0.99), 100);
        assert_eq!(h.percentile_upper_bound(0.0), 1);
        // Every quantile bound is sound: at least that fraction of
        // samples really is <= the bound.
        for q in [0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let bound = h.percentile_upper_bound(q);
            let covered = (1..=100u64).filter(|&v| v <= bound).count() as f64 / 100.0;
            assert!(covered + 1e-9 >= q, "q={q} bound={bound} covered={covered}");
        }

        let mut zeros = Histogram::default();
        zeros.observe_n(0, 10);
        assert_eq!(zeros.percentile_upper_bound(0.9), 0);
    }

    #[test]
    fn histogram_tracks_summary_stats() {
        let mut h = Histogram::default();
        for v in [3u64, 0, 9, 9, 1] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 22);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 9);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[4], 2); // the two nines
    }

    #[test]
    fn merge_accumulates_counters_and_histograms() {
        let mut a = Metrics::new();
        a.counter_add("noc.bytes", "bytes", 10);
        a.observe("samples", "samples", 4);
        let mut b = Metrics::new();
        b.counter_add("noc.bytes", "bytes", 5);
        b.observe("samples", "samples", 8);
        b.gauge_set("rate", "ratio", 0.5);
        a.merge(&b);
        assert_eq!(a.get("noc.bytes").map(|m| m.value.clone()), Some(MetricValue::Counter(15)));
        match a.get("samples").map(|m| &m.value) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 12);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(a.get("rate").map(|m| m.value.clone()), Some(MetricValue::Gauge(0.5)));
    }

    #[test]
    fn merge_order_of_disjoint_shards_is_immaterial() {
        let mut s1 = Metrics::new();
        s1.counter_add("a", "n", 1);
        let mut s2 = Metrics::new();
        s2.counter_add("b", "n", 2);
        let mut fwd = Metrics::new();
        fwd.merge(&s1);
        fwd.merge(&s2);
        let mut rev = Metrics::new();
        rev.merge(&s2);
        rev.merge(&s1);
        assert_eq!(fwd, rev);
    }
}
