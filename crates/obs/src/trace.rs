//! Span-based tracing keyed to simulated cycles.

/// Handle to a span inside a [`Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub(crate) usize);

/// One completed (or still-open) span: a named half-open interval
/// `[start_cycle, end_cycle)` of simulated time, with optional attributed
/// energy.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"frame"` or `"frame/interp"`.
    pub name: String,
    /// First simulated cycle covered by the span.
    pub start_cycle: u64,
    /// One past the last simulated cycle covered (equal to `start_cycle`
    /// while the span is still open).
    pub end_cycle: u64,
    /// Index of the enclosing span in [`Trace::spans`], if any.
    pub parent: Option<usize>,
    /// Nesting depth (root spans are depth 0).
    pub depth: u16,
    /// Energy attributed to this span, in joules (0.0 when not modelled).
    pub energy_j: f64,
}

impl SpanRecord {
    /// Simulated cycles covered by the span.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
}

/// An append-only tree of spans.
///
/// Spans nest via an open-span stack: a span begun while another is open
/// becomes its child. All methods are total — mismatched or repeated
/// [`Trace::end`] calls are ignored rather than panicking, per the repo's
/// P1 (panic-freedom) rule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// All spans in begin order; tree edges live in [`SpanRecord::parent`].
    pub spans: Vec<SpanRecord>,
    open: Vec<usize>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span starting at `cycle`, nested under the innermost open
    /// span if there is one.
    pub fn begin(&mut self, name: &str, cycle: u64) -> SpanId {
        let parent = self.open.last().copied();
        let depth = match parent.and_then(|p| self.spans.get(p)) {
            Some(p) => p.depth.saturating_add(1),
            None => 0,
        };
        let idx = self.spans.len();
        // lint: allow(h2): span records are the trace's product;
        // tracing is opt-in via the obs feature
        self.spans.push(SpanRecord {
            // lint: allow(h2): owned span name — see above
            name: name.to_string(),
            start_cycle: cycle,
            end_cycle: cycle,
            parent,
            depth,
            energy_j: 0.0,
        });
        // lint: allow(h2): open-span stack is at most span-depth deep
        self.open.push(idx);
        SpanId(idx)
    }

    /// Close `span` at `cycle`. Closing a span also closes any of its
    /// descendants still open (at the same cycle), keeping the open stack
    /// consistent without panicking on mismatched calls.
    pub fn end(&mut self, span: SpanId, cycle: u64) {
        if let Some(pos) = self.open.iter().rposition(|&idx| idx == span.0) {
            for &idx in self.open.get(pos..).into_iter().flatten() {
                if let Some(rec) = self.spans.get_mut(idx) {
                    rec.end_cycle = cycle.max(rec.start_cycle);
                }
            }
            self.open.truncate(pos);
        }
    }

    /// Record an already-closed span `[start, end)` nested under the
    /// innermost open span. This is the common path for the simulator,
    /// which knows interval extents after the fact rather than streaming
    /// begin/end events.
    pub fn record(&mut self, name: &str, start: u64, end: u64) -> SpanId {
        let id = self.begin(name, start);
        self.end(id, end.max(start));
        id
    }

    /// Attribute `joules` of energy to `span`.
    pub fn set_energy(&mut self, span: SpanId, joules: f64) {
        if let Some(rec) = self.spans.get_mut(span.0) {
            rec.energy_j = joules;
        }
    }

    /// Look up a span record.
    pub fn get(&self, span: SpanId) -> Option<&SpanRecord> {
        self.spans.get(span.0)
    }

    /// Sum of cycles over the *direct children* of `span`. The breakdown
    /// report's exactness test asserts this equals the parent's own cycle
    /// count for attribution spans.
    pub fn child_cycles(&self, span: SpanId) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(span.0))
            .fold(0u64, |acc, s| acc.saturating_add(s.cycles()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_follows_open_stack() {
        let mut t = Trace::new();
        let frame = t.begin("frame", 0);
        let samp = t.record("sampling", 0, 10);
        let interp = t.record("interp", 10, 40);
        t.end(frame, 40);
        assert_eq!(t.get(samp).and_then(|s| s.parent), Some(frame.0));
        assert_eq!(t.get(interp).map(|s| s.depth), Some(1));
        assert_eq!(t.get(frame).map(|s| s.cycles()), Some(40));
        assert_eq!(t.child_cycles(frame), 40);
    }

    #[test]
    fn end_is_total_on_mismatch() {
        let mut t = Trace::new();
        let a = t.begin("a", 0);
        t.end(a, 5);
        t.end(a, 9); // double end: ignored
        assert_eq!(t.get(a).map(|s| s.end_cycle), Some(5));

        let outer = t.begin("outer", 0);
        let _inner = t.begin("inner", 1);
        t.end(outer, 7); // closes inner too
        assert!(t.spans.iter().all(|s| s.end_cycle >= s.start_cycle));
        assert_eq!(t.spans.iter().filter(|s| s.end_cycle == 7).count(), 2);
    }
}
