//! # fusion3d-arith
//!
//! Mixed-precision arithmetic substrate of the Fusion-3D reproduction:
//!
//! * [`softfloat`] — bit-level IEEE-754 single-precision
//!   decomposition, normalization, and round-to-nearest-even, the
//!   primitives the datapath models are built from;
//! * [`half`] — a from-scratch binary16 type for the inference
//!   datapath's reduced-precision storage;
//! * [`fiem`] — the FP-INT Efficient Multiplier (Technique T2-2),
//!   bit-exact against the conventional INT2FP + FPMUL path;
//! * [`cost`] — structural gate-count area/power models reproducing
//!   the paper's 55 % area / 65 % power saving claim for FIEM.
//!
//! ```
//! use fusion3d_arith::fiem::{fiem_mul, int2fp_fpmul};
//! use fusion3d_arith::cost::{compare_fiem, WEIGHT_BITS};
//!
//! // Bit-exact equivalence of the two datapaths...
//! assert_eq!(fiem_mul(0.75, 42).to_bits(), int2fp_fpmul(0.75, 42).to_bits());
//! // ...at a fraction of the hardware cost.
//! assert!(compare_fiem(WEIGHT_BITS).area_saving > 0.4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod fiem;
pub mod half;
pub mod softfloat;

pub use cost::{compare_fiem, FiemComparison, HardwareCost};
pub use fiem::{fiem_mul, int2fp_fpmul, FixedWeight};
pub use half::F16;
pub use softfloat::F32Parts;
