//! IEEE-754 binary16 ("half") implemented from scratch.
//!
//! The accelerator's inference datapath runs Stage II/III arithmetic
//! in reduced precision while training stays in full floating point
//! (Table II shows why). `F16` provides bit-accurate storage and
//! conversion semantics so the simulator can quantify the precision
//! split.

use std::fmt;

/// A 16-bit IEEE-754 binary16 value.
///
/// Arithmetic is performed by converting through `f32` (exactly
/// representable) and rounding the result back — the behaviour of a
/// datapath with f32 accumulators and f16 storage, which is how the
/// accelerator's inference pipeline operates.
///
/// # Examples
///
/// ```
/// use fusion3d_arith::half::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// let y = F16::from_f32(0.1);
/// // 0.1 is not representable: conversion rounds.
/// assert!((y.to_f32() - 0.1).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

const F16_FRACTION_BITS: u32 = 10;
const F16_EXP_BIAS: i32 = 15;
const F16_EXP_MAX: i32 = 0x1F;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);

    /// Creates a value from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            return if frac == 0 {
                F16(sign | 0x7C00)
            } else {
                F16(sign | 0x7E00) // canonical quiet NaN
            };
        }
        let unbiased = exp - 127;
        let h_exp = unbiased + F16_EXP_BIAS;
        if h_exp >= F16_EXP_MAX {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if h_exp <= 0 {
            // Subnormal or zero in f16.
            if h_exp < -10 {
                return F16(sign); // underflow to zero
            }
            // Build the subnormal with the implicit bit, then shift.
            // The f16 subnormal LSB weighs 2^-24 and the significand
            // carries 2^(unbiased - 23) per unit, so the right shift
            // is -unbiased - 1 (14..=24 over the subnormal range).
            let sig = frac | 0x80_0000;
            let shift = (-unbiased - 1) as u32;
            let sub = sig >> shift;
            let remainder = sig & ((1 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let round_up = remainder > half || (remainder == half && sub & 1 == 1);
            return F16(sign | (sub + round_up as u32) as u16);
        }
        // Normal: round 23-bit fraction to 10 bits, nearest-even.
        let shift = 13u32;
        let sub = frac >> shift;
        let remainder = frac & 0x1FFF;
        let half = 1u32 << (shift - 1);
        let round_up = remainder > half || (remainder == half && sub & 1 == 1);
        let mut h = (h_exp as u32) << F16_FRACTION_BITS | sub;
        h += round_up as u32; // carry may bump the exponent, which is correct
        if h >= 0x7C00 {
            return F16(sign | 0x7C00);
        }
        F16(sign | h as u16)
    }

    /// Converts to `f32` exactly (every `F16` is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> F16_FRACTION_BITS) & 0x1F) as i32;
        let frac = (self.0 & 0x3FF) as u32;
        let bits = if exp == 0x1F {
            // Inf / NaN.
            sign | 0x7F80_0000 | (frac << 13)
        } else if exp == 0 {
            if frac == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize into f32.
                let mut e = -14i32;
                let mut f = frac;
                while f & 0x400 == 0 {
                    f <<= 1;
                    e -= 1;
                }
                f &= 0x3FF;
                sign | (((e + 127) as u32) << 23) | (f << 13)
            }
        } else {
            sign | (((exp - F16_EXP_BIAS + 127) as u32) << 23) | (frac << 13)
        };
        f32::from_bits(bits)
    }

    /// Whether the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x3FF) != 0
    }

    /// Whether the value is ±∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Whether the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl std::ops::Add for F16 {
    type Output = F16;

    /// Half-precision addition (f32 compute, f16 result).
    #[inline]
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Mul for F16 {
    type Output = F16;

    /// Half-precision multiplication (f32 compute, f16 result).
    #[inline]
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds an entire `f32` slice through f16 storage in place,
/// modelling a reduced-precision buffer.
pub fn round_trip_f16(values: &mut [f32]) {
    for v in values.iter_mut() {
        *v = F16::from_f32(*v).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        // 1/3 rounds to 0x3555.
        assert_eq!(F16::from_f32(1.0 / 3.0).to_bits(), 0x3555);
    }

    #[test]
    fn overflow_and_underflow() {
        assert!(F16::from_f32(1e9).is_infinite());
        assert!(F16::from_f32(-1e9).to_f32().is_infinite());
        assert_eq!(F16::from_f32(1e-10).to_bits(), 0); // underflow
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::INFINITY).is_infinite());
    }

    #[test]
    fn subnormal_round_trip() {
        // Smallest positive f16 subnormal: 2^-24.
        let tiny = 2f32.powi(-24);
        let h = F16::from_f32(tiny);
        assert_eq!(h.to_bits(), 0x0001);
        assert_eq!(h.to_f32(), tiny);
        // Largest subnormal.
        let big_sub = F16::from_bits(0x03FF);
        assert!(big_sub.to_f32() < 2f32.powi(-14));
        assert_eq!(F16::from_f32(big_sub.to_f32()).to_bits(), 0x03FF);
    }

    #[test]
    fn arithmetic_via_f32() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((F16::ONE * F16::ZERO).to_f32(), 0.0);
    }

    #[test]
    fn precision_loss_is_bounded() {
        // f16 has 11 significant bits: relative error <= 2^-11.
        for &v in &[0.1f32, 3.151, 123.456, 0.001234, 999.9] {
            let r = F16::from_f32(v).to_f32();
            let rel = ((r - v) / v).abs();
            assert!(rel <= 2f32.powi(-11), "value {v}: rel err {rel}");
        }
    }

    #[test]
    fn round_trip_slice() {
        let mut vals = vec![0.1f32, 1.0, -2.5, 1e-9];
        round_trip_f16(&mut vals);
        assert_eq!(vals[1], 1.0);
        assert_eq!(vals[2], -2.5);
        assert_eq!(vals[3], 0.0);
        assert!((vals[0] - 0.1).abs() < 1e-4);
    }

    proptest! {
        #[test]
        fn prop_f16_to_f32_round_trips(bits: u16) {
            let h = F16::from_bits(bits);
            prop_assume!(!h.is_nan());
            // Every non-NaN f16 is exactly representable in f32 and
            // converts back to the same bits.
            prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
        }

        #[test]
        fn prop_conversion_is_monotonic(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
        }

        #[test]
        fn prop_rounding_error_within_half_ulp(v in -60000.0f32..60000.0) {
            prop_assume!(v.abs() > 1e-4);
            let r = F16::from_f32(v).to_f32();
            let rel = ((r - v) / v).abs();
            prop_assert!(rel <= 2f32.powi(-11), "rel err {rel} for {v}");
        }
    }
}
