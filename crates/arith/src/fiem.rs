//! The FP-INT Efficient Multiplier (FIEM), Technique T2-2.
//!
//! Stage II mixes data types: interpolation *weights* derive from
//! fixed-point fractional coordinates (integers), while *features* are
//! floating point. The conventional datapath converts the integer to
//! floating point (INT2FP) and uses a full floating-point multiplier
//! (FPMUL). FIEM instead multiplies the float's fraction directly by
//! the integer in a narrow integer multiplier and adjusts the exponent
//! afterwards — functionally identical, but substantially smaller and
//! lower power (the paper reports 55 % area and 65 % power saving).
//!
//! Both datapaths are modelled bit-accurately here and verified to
//! produce identical results; their hardware costs are modelled in
//! [`crate::cost`].

use crate::softfloat::{compose, F32Parts};

/// Maximum integer magnitude FIEM accepts. The paper's interpolation
/// weights are fixed-point values well inside this range; 2^24 keeps
/// every input exactly representable in `f32` so the reference path is
/// well-defined.
pub const FIEM_MAX_INT: i32 = 1 << 24;

/// Multiplies a finite `f32` by a small integer through the FIEM
/// datapath: the 24-bit significand enters an integer multiplier with
/// `int`, and the exponent is carried around the multiplier unchanged;
/// a single normalize/round stage produces the result.
///
/// # Panics
///
/// Panics if `value` is not finite or `|int| > 2^24`.
///
/// # Examples
///
/// ```
/// use fusion3d_arith::fiem::fiem_mul;
///
/// assert_eq!(fiem_mul(1.5, 4), 6.0);
/// assert_eq!(fiem_mul(-0.375, 3), -1.125);
/// ```
pub fn fiem_mul(value: f32, int: i32) -> f32 {
    assert!(int.abs() <= FIEM_MAX_INT, "FIEM integer operand out of range: {int}");
    let parts = F32Parts::from_f32(value);
    if int == 0 || parts.significand == 0 {
        return if parts.negative != (int < 0) { -0.0 } else { 0.0 };
    }
    // Fraction × integer in a 24×25-bit integer multiplier.
    let product = parts.significand as u64 * int.unsigned_abs() as u64;
    let negative = parts.negative != (int < 0);
    compose(negative, parts.exponent, product)
}

/// The reference datapath: INT2FP conversion followed by a full FPMUL,
/// modelled by the host's IEEE-754 multiplication (integers up to 2^24
/// convert exactly).
///
/// # Panics
///
/// Panics if `value` is not finite or `|int| > 2^24`.
pub fn int2fp_fpmul(value: f32, int: i32) -> f32 {
    assert!(value.is_finite(), "reference path requires finite input");
    assert!(int.abs() <= FIEM_MAX_INT, "integer operand out of range: {int}");
    value * int as f32
}

/// A fixed-point interpolation weight with `FRAC_BITS` fractional
/// bits, as produced by the accelerator's weight-generation unit from
/// a sample's fractional cell coordinates.
///
/// Trilinear weights are products of three factors in `[0, 1]`, so the
/// raw value fits in `FRAC_BITS + 1` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedWeight<const FRAC_BITS: u32>(i32);

impl<const FRAC_BITS: u32> FixedWeight<FRAC_BITS> {
    /// Quantizes a real weight in `[0, 1]` to fixed point.
    ///
    /// # Panics
    ///
    /// Panics if the weight is outside `[0, 1]`.
    pub fn from_f32(w: f32) -> Self {
        // Keeps `1 << FRAC_BITS` exactly representable in f32 and the
        // rounded product provably inside i32 (lint rule A4).
        debug_assert!((0..=24).contains(&FRAC_BITS), "fraction width exceeds f32 significand");
        assert!((0.0..=1.0).contains(&w), "weight out of [0,1]: {w}");
        FixedWeight((w * (1 << FRAC_BITS) as f32).round() as i32)
    }

    /// The raw integer value.
    #[inline]
    pub fn raw(self) -> i32 {
        self.0
    }

    /// The represented real value.
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1 << FRAC_BITS) as f32
    }

    /// Multiplies a floating-point feature by this weight using FIEM:
    /// one integer multiply plus an exponent shift by `FRAC_BITS`.
    pub fn apply(self, feature: f32) -> f32 {
        // `from_f32` only produces raw values in [0, 2^FRAC_BITS], so
        // the widening to u64 below cannot wrap and the 25×24-bit
        // product fits u64 with room to spare (lint rule A2 verifies
        // both from these bounds).
        debug_assert!((0..=24).contains(&FRAC_BITS), "fraction width exceeds f32 significand");
        debug_assert!((0..=1 << FRAC_BITS).contains(&self.0), "weight raw value out of range");
        let parts = F32Parts::from_f32(feature);
        if self.0 == 0 || parts.significand == 0 {
            return 0.0;
        }
        let product = parts.significand as u64 * self.0 as u64;
        compose(parts.negative, parts.exponent - FRAC_BITS as i32, product)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_small_products() {
        assert_eq!(fiem_mul(1.0, 7), 7.0);
        assert_eq!(fiem_mul(2.5, 2), 5.0);
        assert_eq!(fiem_mul(-3.0, 5), -15.0);
        assert_eq!(fiem_mul(3.0, -5), -15.0);
        assert_eq!(fiem_mul(-3.0, -5), 15.0);
        assert_eq!(fiem_mul(0.0, 123), 0.0);
        assert_eq!(fiem_mul(42.0, 0), 0.0);
    }

    #[test]
    fn matches_reference_on_representative_values() {
        let floats = [
            1.0f32,
            -1.0,
            0.5,
            std::f32::consts::PI,
            -std::f32::consts::E,
            1e-6,
            1e6,
            0.333333,
            123456.78,
            -0.0001,
        ];
        let ints = [0i32, 1, -1, 2, 3, 7, 255, -255, 65535, 1 << 20, -(1 << 24)];
        for &f in &floats {
            for &i in &ints {
                let fiem = fiem_mul(f, i);
                let reference = int2fp_fpmul(f, i);
                assert_eq!(
                    fiem.to_bits(),
                    reference.to_bits(),
                    "FIEM({f}, {i}) = {fiem} != {reference}"
                );
            }
        }
    }

    #[test]
    fn saturates_like_compose_on_overflow() {
        // f32::MAX * 2 saturates rather than producing inf — the
        // datapath's documented flush/saturate behaviour.
        assert_eq!(fiem_mul(f32::MAX, 2), f32::MAX);
        assert_eq!(fiem_mul(-f32::MAX, 2), -f32::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oversized_integer() {
        fiem_mul(1.0, (1 << 24) + 1);
    }

    #[test]
    fn fixed_weight_quantization() {
        let w = FixedWeight::<8>::from_f32(0.5);
        assert_eq!(w.raw(), 128);
        assert_eq!(w.to_f32(), 0.5);
        let one = FixedWeight::<8>::from_f32(1.0);
        assert_eq!(one.raw(), 256);
        let zero = FixedWeight::<8>::from_f32(0.0);
        assert_eq!(zero.apply(123.0), 0.0);
    }

    #[test]
    fn fixed_weight_apply_matches_float_multiply() {
        // With the weight exactly representable, FIEM-by-weight equals
        // the float product exactly.
        let w = FixedWeight::<8>::from_f32(0.25);
        for &f in &[1.0f32, -3.5, 0.123, 1e4] {
            let got = w.apply(f);
            let want = f * 0.25;
            assert_eq!(got.to_bits(), want.to_bits(), "{f} * 0.25");
        }
    }

    #[test]
    fn trilinear_partition_of_unity_in_fixed_point() {
        // The eight trilinear corner weights of any fractional
        // position sum to 1; quantized weights applied through FIEM
        // reconstruct a constant feature within quantization error.
        let fracs = [(0.3f32, 0.6f32, 0.9f32), (0.0, 0.5, 1.0), (0.25, 0.25, 0.25)];
        for (fx, fy, fz) in fracs {
            let feature = 0.75f32;
            let mut total = 0.0f32;
            for i in 0..8 {
                let wx = if i & 1 == 0 { 1.0 - fx } else { fx };
                let wy = if i & 2 == 0 { 1.0 - fy } else { fy };
                let wz = if i & 4 == 0 { 1.0 - fz } else { fz };
                let w = FixedWeight::<10>::from_f32(wx * wy * wz);
                total += w.apply(feature);
            }
            assert!(
                (total - feature).abs() < 8.0 * feature / 1024.0,
                "partition of unity violated: {total} vs {feature}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_fiem_matches_reference(f in -1e30f32..1e30, i in -(1i32 << 24)..(1 << 24)) {
            prop_assume!(f.is_normal() || f == 0.0);
            let fiem = fiem_mul(f, i);
            let reference = int2fp_fpmul(f, i);
            // Identical unless the reference overflowed/underflowed to a
            // non-finite or subnormal value the datapath saturates.
            if reference.is_finite() && (reference == 0.0 || reference.is_normal()) {
                prop_assert_eq!(fiem.to_bits(), reference.to_bits(),
                    "FIEM({}, {}): {} vs {}", f, i, fiem, reference);
            }
        }

        #[test]
        fn prop_fiem_sign_rule(f in 1e-20f32..1e20, i in 1i32..(1 << 24)) {
            prop_assume!(f.is_normal());
            prop_assert!(fiem_mul(f, i) >= 0.0);
            prop_assert!(fiem_mul(-f, i) <= 0.0);
            prop_assert!(fiem_mul(f, -i) <= 0.0);
            prop_assert!(fiem_mul(-f, -i) >= 0.0);
        }

        #[test]
        fn prop_fixed_weight_error_bound(w in 0.0f32..=1.0, f in -100.0f32..100.0) {
            prop_assume!(f.is_normal() || f == 0.0);
            let q = FixedWeight::<10>::from_f32(w);
            let got = q.apply(f);
            let want = w * f;
            // Quantization error of the weight dominates: half an LSB.
            prop_assert!((got - want).abs() <= f.abs() / 1024.0 + 1e-6,
                "w={} f={} got={} want={}", w, f, got, want);
        }
    }
}
