//! Bit-level decomposition of IEEE-754 single-precision values.
//!
//! The accelerator's datapath reasons about floats as
//! (sign, exponent, fraction) triples — the FIEM multiplier
//! (Technique T2-2) routes the fraction through an integer multiplier
//! while handling the exponent separately. This module provides the
//! exact decomposition/composition primitives that model uses.

/// Number of explicit fraction bits in an `f32`.
pub const F32_FRACTION_BITS: u32 = 23;
/// Exponent bias of an `f32`.
pub const F32_EXP_BIAS: i32 = 127;

/// The fields of a decomposed `f32`.
///
/// For normal numbers the significand has the implicit leading 1 made
/// explicit, so `significand` is in `[2^23, 2^24)`. Zeros and
/// subnormals carry `significand < 2^23` with the minimum exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F32Parts {
    /// Sign bit (`true` = negative).
    pub negative: bool,
    /// Unbiased exponent of the significand interpreted as
    /// `significand × 2^(exponent − 23)`.
    pub exponent: i32,
    /// 24-bit significand with the implicit bit made explicit.
    pub significand: u32,
}

impl F32Parts {
    /// Decomposes a finite `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite — the accelerator datapath
    /// never produces them and the cost model excludes the special
    /// cases.
    pub fn from_f32(value: f32) -> Self {
        assert!(value.is_finite(), "F32Parts requires a finite value, got {value}");
        let bits = value.to_bits();
        let negative = bits >> 31 == 1;
        let raw_exp = ((bits >> F32_FRACTION_BITS) & 0xFF) as i32;
        let fraction = bits & ((1 << F32_FRACTION_BITS) - 1);
        if raw_exp == 0 {
            // Zero or subnormal: no implicit bit, minimum exponent.
            F32Parts { negative, exponent: 1 - F32_EXP_BIAS, significand: fraction }
        } else {
            F32Parts {
                negative,
                exponent: raw_exp - F32_EXP_BIAS,
                significand: fraction | (1 << F32_FRACTION_BITS),
            }
        }
    }

    /// Recomposes the parts into an `f32`, normalizing and rounding to
    /// nearest-even as hardware would. Values overflowing the `f32`
    /// range saturate to ±`f32::MAX`; underflow flushes to zero (the
    /// accelerator flushes subnormals).
    pub fn to_f32(self) -> f32 {
        compose(self.negative, self.exponent, self.significand as u64)
    }
}

/// Builds an `f32` from a sign, an exponent, and an unnormalized
/// significand `sig` interpreted as `sig × 2^(exponent − 23)`,
/// rounding to nearest-even.
///
/// This is the normalization/rounding stage shared by the FIEM model
/// and the reference FPMUL model. Subnormal results flush to zero;
/// overflow saturates to ±`f32::MAX`.
pub fn compose(negative: bool, exponent: i32, sig: u64) -> f32 {
    if sig == 0 {
        return if negative { -0.0 } else { 0.0 };
    }
    // Normalize the significand into [2^23, 2^24).
    let mut exp = exponent;
    let mut sig = sig;
    let top = 63 - sig.leading_zeros() as i32; // position of the MSB
    let shift = top - F32_FRACTION_BITS as i32;
    if shift > 0 {
        // Round to nearest-even while shifting right.
        let round_bit = 1u64 << (shift - 1);
        let sticky_mask = round_bit - 1;
        let lsb = (sig >> shift) & 1;
        let round_up = (sig & round_bit) != 0 && ((sig & sticky_mask) != 0 || lsb == 1);
        sig >>= shift;
        if round_up {
            sig += 1;
            if sig == (1 << (F32_FRACTION_BITS + 1)) {
                sig >>= 1;
                exp += 1;
            }
        }
        exp += shift;
    } else if shift < 0 {
        sig <<= -shift;
        exp += shift;
    }
    let raw_exp = exp + F32_EXP_BIAS;
    if raw_exp >= 0xFF {
        return if negative { -f32::MAX } else { f32::MAX };
    }
    if raw_exp <= 0 {
        // Flush-to-zero on underflow.
        return if negative { -0.0 } else { 0.0 };
    }
    let bits = ((negative as u32) << 31)
        | ((raw_exp as u32) << F32_FRACTION_BITS)
        | (sig as u32 & ((1 << F32_FRACTION_BITS) - 1));
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decompose_simple_values() {
        let one = F32Parts::from_f32(1.0);
        assert!(!one.negative);
        assert_eq!(one.exponent, 0);
        assert_eq!(one.significand, 1 << 23);

        let neg_two = F32Parts::from_f32(-2.0);
        assert!(neg_two.negative);
        assert_eq!(neg_two.exponent, 1);

        let half = F32Parts::from_f32(0.5);
        assert_eq!(half.exponent, -1);

        let zero = F32Parts::from_f32(0.0);
        assert_eq!(zero.significand, 0);
    }

    #[test]
    fn round_trip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 3.25, -123.75, 1e-20, 1e20, f32::MAX, f32::MIN_POSITIVE] {
            let parts = F32Parts::from_f32(v);
            assert_eq!(parts.to_f32().to_bits(), v.to_bits(), "round trip of {v}");
        }
    }

    #[test]
    fn subnormals_flush_to_zero_on_compose() {
        let tiny = f32::MIN_POSITIVE / 4.0; // subnormal
        let parts = F32Parts::from_f32(tiny);
        // Decomposition is lossless in fields, but composition flushes.
        assert_eq!(parts.to_f32(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        F32Parts::from_f32(f32::NAN);
    }

    #[test]
    fn compose_normalizes_wide_significands() {
        // value = sig · 2^(exp − 23): 3·2^40 with exp = −17 is 3.0.
        let v = compose(false, 23 - 40, 3u64 << 40);
        assert_eq!(v, 3.0);
        // And 6.0 one exponent up.
        assert_eq!(compose(false, 23 - 40 + 1, 3u64 << 40), 6.0);
    }

    #[test]
    fn compose_rounds_to_nearest_even() {
        // compose(false, -2, sig) represents sig × 2^-25; the
        // significand must shift right by 2, discarding a 2-bit
        // remainder, so remainder 2 (= exactly half) exposes the
        // ties-to-even rule.
        // 2^25 + 2 → pre-round 2^23 (even), tie → stays: exactly 1.0.
        assert_eq!(compose(false, -2, (1 << 25) + 2), 1.0);
        // 2^25 + 6 → pre-round 2^23 + 1 (odd), tie → rounds up to
        // 2^23 + 2: 1 + 2^-22.
        assert_eq!(compose(false, -2, (1 << 25) + 6), 1.0 + 2f32.powi(-22));
        // Remainder above half always rounds up: 2^25 + 3 → 1 + 2^-23.
        assert_eq!(compose(false, -2, (1 << 25) + 3), 1.0 + 2f32.powi(-23));
        // Remainder below half truncates: 2^25 + 1 → 1.0.
        assert_eq!(compose(false, -2, (1 << 25) + 1), 1.0);
    }

    #[test]
    fn compose_saturates_on_overflow() {
        assert_eq!(compose(false, 200, 1 << 23), f32::MAX);
        assert_eq!(compose(true, 200, 1 << 23), -f32::MAX);
    }

    proptest! {
        #[test]
        fn prop_round_trip_normals(bits in 0u32..0x7F80_0000) {
            // Positive normals and zero (raw exponent < 255).
            let v = f32::from_bits(bits);
            prop_assume!(v.is_finite());
            prop_assume!(v == 0.0 || v.is_normal());
            let parts = F32Parts::from_f32(v);
            prop_assert_eq!(parts.to_f32().to_bits(), v.to_bits());
        }

        #[test]
        fn prop_sign_symmetry(v in -1e30f32..1e30) {
            prop_assume!(v.is_normal() || v == 0.0);
            let p = F32Parts::from_f32(v);
            let n = F32Parts::from_f32(-v);
            prop_assert_eq!(p.exponent, n.exponent);
            prop_assert_eq!(p.significand, n.significand);
            // Negation always flips the sign bit, including for ±0.
            prop_assert_ne!(p.negative, n.negative);
        }
    }
}
