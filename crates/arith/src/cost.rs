//! Gate-level area/power cost models for the arithmetic datapaths.
//!
//! The paper's Technique T2-2 ablation is a *ratio* claim: replacing
//! the conventional INT2FP-then-FPMUL structure with FIEM saves 55 %
//! area and 65 % power (post-layout, Fig. 6(d)). We reproduce the
//! claim with a structural cost model: every datapath is decomposed
//! into multiplier arrays, adders, shifters, and encoders, each costed
//! in full-adder-equivalent gate units; power additionally weights
//! each block by a switching-activity factor. The block constants are
//! calibrated against the paper's published post-layout ratios.

/// Area in full-adder-equivalent gate units and power in
/// gate·activity units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HardwareCost {
    /// Area in full-adder-equivalent gates.
    pub area: f64,
    /// Power in gate·activity units (area × switching activity).
    pub power: f64,
}

impl HardwareCost {
    /// A zero cost.
    pub const ZERO: HardwareCost = HardwareCost { area: 0.0, power: 0.0 };

    /// Creates a cost from an area and an activity factor.
    pub fn new(area: f64, activity: f64) -> Self {
        HardwareCost { area, power: area * activity }
    }

    /// Approximate silicon area in µm² at 28 nm (≈ 0.6 µm² per
    /// NAND2-equivalent; one full adder ≈ 6 NAND2).
    pub fn area_um2(&self) -> f64 {
        self.area * 6.0 * 0.6
    }
}

impl std::ops::Add for HardwareCost {
    type Output = HardwareCost;
    fn add(self, rhs: HardwareCost) -> HardwareCost {
        HardwareCost { area: self.area + rhs.area, power: self.power + rhs.power }
    }
}

impl std::iter::Sum for HardwareCost {
    fn sum<I: Iterator<Item = HardwareCost>>(iter: I) -> HardwareCost {
        iter.fold(HardwareCost::ZERO, std::ops::Add::add)
    }
}

/// Switching-activity factors per block type, from the calibration
/// against the paper's post-layout power ratio. Conversion logic
/// (priority encode + variable shift) toggles far more than a
/// regularly-clocked multiplier array.
mod activity {
    pub const MULTIPLIER: f64 = 1.0;
    pub const ADDER: f64 = 0.8;
    pub const SHIFTER: f64 = 1.3;
    pub const ENCODER: f64 = 1.8;
    pub const ROUNDING: f64 = 0.9;
}

/// An unsigned array multiplier of `w × h` bits: `w·h` full-adder
/// cells. Switching activity scales with the narrower operand width —
/// a narrow integer operand leaves most partial-product rows quiet,
/// which is where FIEM's disproportionate *power* saving (beyond its
/// area saving) comes from.
pub fn multiplier(w: u32, h: u32) -> HardwareCost {
    // Operands are datapath bit-widths; 64 bounds the `w * h` cell
    // count provably inside u32 (lint rule A2).
    debug_assert!(w <= 64 && h <= 64, "multiplier operand widths are bit counts");
    let narrow = w.min(h) as f64;
    let act = activity::MULTIPLIER * (0.65 + 0.45 * narrow / 24.0);
    HardwareCost::new((w * h) as f64, act)
}

/// A ripple/prefix adder of `bits` width.
pub fn adder(bits: u32) -> HardwareCost {
    HardwareCost::new(bits as f64, activity::ADDER)
}

/// A barrel shifter over `bits` data with full shift range:
/// `bits · log2(bits)` mux cells.
pub fn barrel_shifter(bits: u32) -> HardwareCost {
    HardwareCost::new(bits as f64 * (bits as f64).log2(), activity::SHIFTER)
}

/// A priority encoder over `bits` inputs.
pub fn priority_encoder(bits: u32) -> HardwareCost {
    HardwareCost::new(bits as f64 * 1.5, activity::ENCODER)
}

/// Round-to-nearest-even logic for a `bits`-wide result.
pub fn rounding(bits: u32) -> HardwareCost {
    HardwareCost::new(bits as f64 * 0.5, activity::ROUNDING)
}

/// Fraction width of an `f32` significand including the implicit bit.
pub const F32_SIG_BITS: u32 = 24;

/// Default integer-operand width for Stage II interpolation weights
/// (10 fractional bits, matching the accelerator's weight quantizer).
pub const WEIGHT_BITS: u32 = 10;

/// Cost of a full single-precision floating-point multiplier: 24×24
/// significand array, exponent adder, normalization, rounding.
pub fn fpmul_f32() -> HardwareCost {
    multiplier(F32_SIG_BITS, F32_SIG_BITS)
        + adder(8)
        + barrel_shifter(F32_SIG_BITS)
        + rounding(F32_SIG_BITS)
}

/// Cost of an INT2FP conversion unit for a `int_bits` integer:
/// priority encoder (leading-one detect), normalizing barrel shifter,
/// exponent adjust, rounding.
pub fn int2fp(int_bits: u32) -> HardwareCost {
    priority_encoder(int_bits)
        + barrel_shifter(int_bits.max(F32_SIG_BITS))
        + adder(8)
        + rounding(F32_SIG_BITS)
}

/// Cost of the FIEM datapath for a `int_bits` integer operand: a
/// narrow 24×`int_bits` array, the shared exponent adder, one
/// normalize/round stage.
pub fn fiem(int_bits: u32) -> HardwareCost {
    multiplier(F32_SIG_BITS, int_bits)
        + adder(8)
        + barrel_shifter(F32_SIG_BITS)
        + rounding(F32_SIG_BITS)
}

/// Cost of the conventional reference: INT2FP conversion followed by a
/// full FPMUL.
pub fn int2fp_fpmul(int_bits: u32) -> HardwareCost {
    int2fp(int_bits) + fpmul_f32()
}

/// Side-by-side comparison of the two mixed-precision datapaths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiemComparison {
    /// FIEM datapath cost.
    pub fiem: HardwareCost,
    /// INT2FP + FPMUL reference cost.
    pub reference: HardwareCost,
    /// Fractional area saving (`1 − fiem/reference`).
    pub area_saving: f64,
    /// Fractional power saving.
    pub power_saving: f64,
}

/// Compares FIEM against INT2FP+FPMUL at the given integer width —
/// the model behind the paper's Fig. 6(d).
pub fn compare_fiem(int_bits: u32) -> FiemComparison {
    let f = fiem(int_bits);
    let r = int2fp_fpmul(int_bits);
    FiemComparison {
        fiem: f,
        reference: r,
        area_saving: 1.0 - f.area / r.area,
        power_saving: 1.0 - f.power / r.power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_costs_scale_with_width() {
        assert!(multiplier(24, 24).area > multiplier(24, 8).area);
        assert_eq!(multiplier(16, 16).area, 256.0);
        assert_eq!(adder(32).area, 32.0);
        assert!(barrel_shifter(32).area > barrel_shifter(8).area);
        assert!(priority_encoder(16).area > 0.0);
    }

    #[test]
    fn cost_addition_and_sum() {
        let a = HardwareCost::new(10.0, 1.0);
        let b = HardwareCost::new(5.0, 2.0);
        let c = a + b;
        assert_eq!(c.area, 15.0);
        assert_eq!(c.power, 20.0);
        let s: HardwareCost = [a, b, c].into_iter().sum();
        assert_eq!(s.area, 30.0);
    }

    #[test]
    fn area_um2_positive() {
        assert!(fpmul_f32().area_um2() > 100.0);
    }

    #[test]
    fn fiem_matches_paper_savings() {
        // The paper reports 55 % area and 65 % power saving at the
        // accelerator's weight precision. The structural model must
        // land in the same regime.
        let cmp = compare_fiem(WEIGHT_BITS);
        assert!(
            (0.45..=0.65).contains(&cmp.area_saving),
            "area saving {} outside the paper's regime",
            cmp.area_saving
        );
        assert!(
            (0.55..=0.75).contains(&cmp.power_saving),
            "power saving {} outside the paper's regime",
            cmp.power_saving
        );
        // Power saving exceeds area saving: the eliminated conversion
        // logic has above-average switching activity.
        assert!(cmp.power_saving > cmp.area_saving);
    }

    #[test]
    fn fiem_saving_shrinks_with_wider_integers() {
        // A wider integer operand grows FIEM's array toward the full
        // FPMUL, shrinking the benefit — the design-space trade-off
        // the paper's choice of narrow weights exploits.
        let narrow = compare_fiem(8);
        let wide = compare_fiem(24);
        assert!(narrow.area_saving > wide.area_saving);
        assert!(wide.area_saving > 0.0, "FIEM never loses: {}", wide.area_saving);
    }

    #[test]
    fn reference_always_costs_more() {
        for bits in [4, 8, 10, 16, 24] {
            let cmp = compare_fiem(bits);
            assert!(cmp.reference.area > cmp.fiem.area);
            assert!(cmp.reference.power > cmp.fiem.power);
        }
    }
}
