//! Regenerates Table V (per-scene NeRF-360 comparison vs 2080Ti).
fn main() {
    fusion3d_bench::experiments::table4_table5::run_table5();
}
