//! Regenerates the per-stage speedup breakdown vs Jetson XNX.
fn main() {
    fusion3d_bench::experiments::ablations::run_breakdown();
}
