//! Regenerates Table II (INT8 quantized-training PSNR sweep).
fn main() {
    fusion3d_bench::experiments::table2::run();
}
