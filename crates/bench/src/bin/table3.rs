//! Regenerates Table III (single-chip comparison).
fn main() {
    fusion3d_bench::experiments::table3::run();
}
