//! Regenerates Table IV (multi-chip comparison).
fn main() {
    fusion3d_bench::experiments::table4_table5::run_table4();
}
