//! Runs the chip-count scaling study.
fn main() {
    fusion3d_bench::experiments::scaling::run();
}
