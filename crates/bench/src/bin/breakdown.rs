//! Paper-style per-module cycle/energy breakdown report, regenerated
//! from the observability trace stream for all eight synthetic scenes.
//!
//! Prints three tables (per-stage cycle attribution, per-module
//! energy, per-scene workload shape), one scene's rendered span tree
//! as a worked example, and — with `--jsonl` — the deterministic
//! JSON-lines export for every scene. Built with `--features obs`, a
//! final section renders a small frame through the probed pipeline and
//! reports the hot-path kernel counters plus the (diagnostic)
//! per-worker dispatch stats.
//!
//! ```text
//! cargo run -p fusion3d-bench --release --bin breakdown [-- --jsonl]
//! ```

use fusion3d_bench::experiments::breakdown;

/// Renders one small frame through the probed pipeline and prints the
/// kernel-counter section of the report.
#[cfg(feature = "obs")]
fn kernel_probe_section() {
    use fusion3d_bench::support::{scene_occupancy, trace_camera};
    use fusion3d_nerf::encoding::HashGridConfig;
    use fusion3d_nerf::math::Vec3;
    use fusion3d_nerf::model::{ModelConfig, NerfModel};
    use fusion3d_nerf::pipeline::{render_image_probed, PipelineConfig};
    use fusion3d_nerf::sampler::SamplerConfig;
    use fusion3d_nerf::scenes::SyntheticScene;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut rng = SmallRng::seed_from_u64(19);
    let model = NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 8,
                features_per_level: 2,
                log2_table_size: 14,
                base_resolution: 16,
                max_resolution: 256,
            },
            hidden_dim: 32,
            geo_feature_dim: 7,
        },
        &mut rng,
    );
    let occupancy = scene_occupancy(SyntheticScene::Lego);
    let camera = trace_camera(64);
    let config = PipelineConfig {
        sampler: SamplerConfig { steps_per_diagonal: 128, max_samples_per_ray: 128 },
        background: Vec3::ONE,
        early_stop: true,
    };
    let mut report = fusion3d_obs::Report::new("lego-kernel-probes");
    let image = render_image_probed(&model, &occupancy, &camera, &config, &mut report);
    println!(
        "\n=== Kernel probes: lego @ {}x{} (--features obs) ===",
        image.width(),
        image.height()
    );
    print!("{}", report.render_table());
}

fn main() {
    let jsonl = std::env::args().skip(1).any(|arg| arg == "--jsonl");
    breakdown::run(jsonl);
    #[cfg(feature = "obs")]
    kernel_probe_section();
}
