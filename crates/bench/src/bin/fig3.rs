//! Regenerates Fig. 3 (per-stage data volumes and design boundaries).
fn main() {
    fusion3d_bench::experiments::fig3::run();
}
