//! Regenerates Fig. 9 (prototype spec and configuration).
fn main() {
    fusion3d_bench::experiments::fig9_fig10::run_fig9();
}
