//! Regenerates Fig. 8 (MoE expert dominance visualization).
fn main() {
    fusion3d_bench::experiments::fig8::run();
}
