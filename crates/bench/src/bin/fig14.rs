//! Regenerates Fig. 14(b) (chiplet I/O-module area sweep).
fn main() {
    fusion3d_bench::experiments::fig14::run();
}
