//! Regenerates Fig. 12 (tiling ablations).
fn main() {
    fusion3d_bench::experiments::fig12::run();
}
