//! Regenerates Fig. 13 (MoE convergence; bandwidth vs model size).
fn main() {
    fusion3d_bench::experiments::fig13::run_fig13a();
    fusion3d_bench::experiments::fig13::run_fig13b();
}
