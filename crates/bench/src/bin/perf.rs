//! Hot-path throughput harness: single-thread points/s of the batched
//! SoA kernels against the scalar reference kernels, plus end-to-end
//! render and train-step rates.
//!
//! Emits `BENCH_perf.json` — the perf-trajectory seed future PRs
//! regress against. `--smoke` runs tiny batch counts (wired into
//! `scripts/check.sh` so the harness itself cannot rot); `--out PATH`
//! overrides the output path.
//!
//! Both sides of every comparison run through this harness with the
//! same chunking, so the reported speedups measure kernel layout, not
//! harness differences. Comparative speedups are the **median of
//! per-round ratios** from alternating batched/scalar rounds
//! ([`time_paired`]); best-of throughput numbers from separate windows
//! drift with host load, per-round ratios do not.

use std::hint::black_box;
use std::time::Instant;

use fusion3d_bench::support::{scene_occupancy, trace_camera};
use fusion3d_nerf::camera::Camera;
use fusion3d_nerf::encoding::{HashGrid, HashGridConfig};
use fusion3d_nerf::math::Vec3;
use fusion3d_nerf::mlp::{Activation, Mlp, MlpBatchCache, MlpCache};
use fusion3d_nerf::mlp_int8::QuantizedMlp;
use fusion3d_nerf::model::{ModelConfig, ModelOptimizer, NerfModel, PointContext};
use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::pipeline::{render_image, PipelineConfig};
use fusion3d_nerf::reference;
use fusion3d_nerf::render::{composite, composite_backward, ShadedSample};
use fusion3d_nerf::sampler::{sample_ray, SamplerConfig};
use fusion3d_nerf::trainer::{Trainer, TrainerConfig};
use fusion3d_nerf::{Dataset, ProceduralScene, SyntheticScene};
use fusion3d_par::set_thread_override;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One microbenchmark line of the JSON report.
struct BenchLine {
    name: &'static str,
    points: usize,
    batched_pts_per_s: f64,
    scalar_pts_per_s: Option<f64>,
    speedup: Option<f64>,
}

/// Times the two sides of a comparison in alternating rounds and
/// returns `(best_a, best_b, median per-round b/a ratio)`. The ratio
/// comes from adjacent measurements, so a host-speed drift between
/// windows (shared machine, frequency scaling) shifts both sides of a
/// round together instead of skewing the reported speedup.
fn time_paired<A: FnMut(), B: FnMut()>(rounds: usize, mut a: A, mut b: B) -> (f64, f64, f64) {
    a();
    b();
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut ratios = Vec::new();
    for _ in 0..rounds {
        let start = Instant::now();
        a();
        let ta = start.elapsed().as_secs_f64();
        let start = Instant::now();
        b();
        let tb = start.elapsed().as_secs_f64();
        best_a = best_a.min(ta);
        best_b = best_b.min(tb);
        ratios.push(tb / ta);
    }
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("benchmark times are finite"));
    (best_a, best_b, ratios[ratios.len() / 2])
}

fn random_positions(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen())).collect()
}

/// Hash-grid encode at Instant-NGP's canonical scale (16 levels × 2
/// features): the batched level-major inference gather vs the scalar
/// per-point reference, identical 4096-point chunking. Neither side
/// retains backward state — the training-side spill is costed by
/// `train_step` instead. Points are uniform over the unit cube, the
/// standard gather-kernel workload; ray-coherent batches are costed
/// end-to-end by the `render` and `train_step` lines.
fn bench_encode(smoke: bool) -> BenchLine {
    let mut rng = SmallRng::seed_from_u64(11);
    let grid = HashGrid::with_random_init(
        HashGridConfig {
            levels: 16,
            features_per_level: 2,
            log2_table_size: if smoke { 12 } else { 17 },
            base_resolution: 16,
            max_resolution: if smoke { 128 } else { 512 },
        },
        &mut rng,
    );
    let chunk = if smoke { 512 } else { 4096 };
    let chunks = if smoke { 2 } else { 16 };
    let points: Vec<Vec<Vec3>> =
        (0..chunks).map(|c| random_positions(chunk, 100 + c as u64)).collect();
    let total = chunk * chunks;
    let dim = grid.config().output_dim();
    let reps = if smoke { 1 } else { 10 };

    let mut out = vec![0.0f32; chunk * dim];
    let (batched, scalar, speedup) = time_paired(
        reps,
        || {
            for pts in &points {
                grid.interpolate_batch_infer(pts, &mut out);
                black_box(&out);
            }
        },
        || {
            for pts in &points {
                black_box(reference::encode_points(&grid, pts));
            }
        },
    );
    BenchLine {
        name: "hash_grid_encode",
        points: total,
        batched_pts_per_s: total as f64 / batched,
        scalar_pts_per_s: Some(total as f64 / scalar),
        speedup: Some(speedup),
    }
}

/// MLP forward at Instant-NGP-like width: blocked GEMM vs the scalar
/// per-sample reference.
fn bench_mlp_forward(smoke: bool) -> BenchLine {
    let mut rng = SmallRng::seed_from_u64(13);
    let mlp = Mlp::new(&[32, 64, 64, 16], Activation::Relu, Activation::None, &mut rng);
    let n = if smoke { 256 } else { 4096 };
    let inputs: Vec<f32> = {
        let mut r = SmallRng::seed_from_u64(17);
        (0..n * mlp.input_dim()).map(|_| r.gen::<f32>() * 2.0 - 1.0).collect()
    };
    let reps = if smoke { 1 } else { 12 };

    let mut cache = MlpBatchCache::new();
    let (batched, scalar, speedup) = time_paired(
        reps,
        || {
            black_box(mlp.forward_batch(&inputs, n, &mut cache));
        },
        || {
            black_box(reference::mlp_forward(&mlp, &inputs, n));
        },
    );
    BenchLine {
        name: "mlp_forward",
        points: n,
        batched_pts_per_s: n as f64 / batched,
        scalar_pts_per_s: Some(n as f64 / scalar),
        speedup: Some(speedup),
    }
}

/// INT8 MLP inference (Technique T2-2): the bit-accurate integer MAC
/// path of [`QuantizedMlp::forward`] vs the per-sample float forward
/// on the same trained-like weights. Both sides run one sample per
/// call — this measures the quantized reference datapath (dynamic
/// activation quantization + `i8×i8→i32` accumulation + dequant), not
/// the blocked-GEMM layout, so the ratio tracks the arithmetic cost
/// of the INT8 path rather than batching effects. Reported in the
/// `batched` column as the quantized side.
fn bench_mlp_forward_int8(smoke: bool) -> BenchLine {
    let mut rng = SmallRng::seed_from_u64(31);
    let mlp = Mlp::new(&[32, 64, 64, 16], Activation::Relu, Activation::None, &mut rng);
    let quantized = QuantizedMlp::quantize(&mlp);
    let n = if smoke { 128 } else { 2048 };
    let dim = mlp.input_dim();
    let inputs: Vec<f32> = {
        let mut r = SmallRng::seed_from_u64(37);
        (0..n * dim).map(|_| r.gen::<f32>() * 2.0 - 1.0).collect()
    };
    let reps = if smoke { 1 } else { 12 };

    let mut cache = MlpCache::new();
    let (int8, float, speedup) = time_paired(
        reps,
        || {
            for s in 0..n {
                black_box(quantized.forward(&inputs[s * dim..(s + 1) * dim]));
            }
        },
        || {
            for s in 0..n {
                black_box(mlp.forward(&inputs[s * dim..(s + 1) * dim], &mut cache));
            }
        },
    );
    BenchLine {
        name: "mlp_forward_int8",
        points: n,
        batched_pts_per_s: n as f64 / int8,
        scalar_pts_per_s: Some(n as f64 / float),
        speedup: Some(speedup),
    }
}

fn bench_model() -> ModelConfig {
    ModelConfig {
        grid: HashGridConfig {
            levels: 8,
            features_per_level: 2,
            log2_table_size: 14,
            base_resolution: 16,
            max_resolution: 256,
        },
        hidden_dim: 32,
        geo_feature_dim: 7,
    }
}

/// Renders every pixel through the scalar reference kernels: Stage I
/// via [`sample_ray`], Stage II one point at a time via
/// [`reference::model_forward`], Stage III via the allocating
/// [`composite`]. The pre-batched pipeline, preserved as a baseline.
fn scalar_render(
    model: &NerfModel,
    occupancy: &OccupancyGrid,
    camera: &Camera,
    sampler: &SamplerConfig,
    background: Vec3,
) {
    for y in 0..camera.height() {
        for x in 0..camera.width() {
            let ray = camera.ray_for_pixel(x, y);
            let (samples, _) = sample_ray(&ray, occupancy, sampler);
            let positions: Vec<Vec3> = samples.iter().map(|s| s.position).collect();
            let (sigmas, colors) = reference::model_forward(model, &positions, ray.direction);
            let shaded: Vec<ShadedSample> = samples
                .iter()
                .zip(sigmas.iter().zip(colors.iter()))
                .map(|(s, (&sigma, &color))| ShadedSample { sigma, color, dt: s.dt })
                .collect();
            black_box(composite(&shaded, background, false).color);
        }
    }
}

/// Full single-thread render (Stage I–III): the batched SoA pipeline
/// vs the scalar per-point reference path, in retained samples per
/// second.
fn bench_render(smoke: bool) -> BenchLine {
    let mut rng = SmallRng::seed_from_u64(19);
    let model = NerfModel::new(bench_model(), &mut rng);
    let occupancy = scene_occupancy(SyntheticScene::Lego);
    let res = if smoke { 16u32 } else { 64 };
    let camera = trace_camera(res);
    let sampler = SamplerConfig { steps_per_diagonal: 128, max_samples_per_ray: 128 };
    let config = PipelineConfig { sampler, background: Vec3::ONE, early_stop: false };

    // Count the retained samples once (Stage I is deterministic).
    let mut samples = 0usize;
    for y in 0..res {
        for x in 0..res {
            samples += sample_ray(&camera.ray_for_pixel(x, y), &occupancy, &sampler).0.len();
        }
    }

    let reps = if smoke { 1 } else { 3 };
    let (batched, scalar, speedup) = time_paired(
        reps,
        || {
            black_box(render_image(&model, &occupancy, &camera, &config));
        },
        || {
            scalar_render(&model, &occupancy, &camera, &sampler, config.background);
        },
    );
    BenchLine {
        name: "render",
        points: samples,
        batched_pts_per_s: samples as f64 / batched,
        scalar_pts_per_s: Some(samples as f64 / scalar),
        speedup: Some(speedup),
    }
}

/// One training step through the scalar reference kernels: per ray,
/// Stage I via [`sample_ray`], a scalar forward per sample for
/// compositing, the allocating [`composite_backward`], then a second
/// scalar forward feeding [`NerfModel::backward`] per sample — the
/// O(1)-context design the batched trainer replaced. Gradients merge
/// into one accumulator and Adam applies once, matching
/// [`Trainer::step`]'s update structure. Returns the processed sample
/// count.
#[allow(clippy::too_many_arguments)]
fn scalar_train_step<R: Rng>(
    model: &mut NerfModel,
    optimizer: &mut ModelOptimizer,
    grads: &mut fusion3d_nerf::model::ModelGrads,
    occupancy: &OccupancyGrid,
    dataset: &Dataset,
    config: &TrainerConfig,
    ctx: &mut PointContext,
    rng: &mut R,
) -> usize {
    let batch = dataset.sample_batch(config.rays_per_batch, rng);
    let inv_norm = 1.0 / (batch.len() as f32 * 3.0);
    grads.zero();
    let mut total = 0usize;
    for (ray, target) in &batch {
        let (samples, _) = sample_ray(ray, occupancy, &config.sampler);
        total += samples.len();
        let positions: Vec<Vec3> = samples.iter().map(|s| s.position).collect();
        let (sigmas, colors) = reference::model_forward(model, &positions, ray.direction);
        let shaded: Vec<ShadedSample> = samples
            .iter()
            .zip(sigmas.iter().zip(colors.iter()))
            .map(|(s, (&sigma, &color))| ShadedSample { sigma, color, dt: s.dt })
            .collect();
        let out = composite(&shaded, config.background, false);
        let err = out.color - *target;
        let d_pixel = err * (2.0 * inv_norm);
        let sample_grads = composite_backward(&shaded, config.background, d_pixel);
        for (s, g) in samples.iter().zip(sample_grads.iter()) {
            model.forward(s.position, ray.direction, ctx);
            model.backward(s.position, ctx, g.d_sigma, g.d_color, grads);
        }
    }
    optimizer.step(model, grads);
    total
}

/// Full single-thread training step (forward + backward + Adam): the
/// batched sharded trainer vs the scalar per-sample reference loop,
/// in processed samples per second. Both sides draw identical ray
/// batches (same seed, same draw count per step) against the same
/// fully-occupied warmup grid, so every paired round does the same
/// Stage-I work.
fn bench_train_step(smoke: bool) -> BenchLine {
    let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
    let dataset = Dataset::from_scene(&scene, 4, 64, 0.9);
    let mut rng = SmallRng::seed_from_u64(23);
    let model = NerfModel::new(bench_model(), &mut rng);
    let config = TrainerConfig {
        rays_per_batch: if smoke { 32 } else { 256 },
        sampler: SamplerConfig { steps_per_diagonal: 96, max_samples_per_ray: 64 },
        occupancy_warmup: u32::MAX,
        ..TrainerConfig::default()
    };
    let mut trainer = Trainer::new(model.clone(), config);
    let mut batched_rng = SmallRng::seed_from_u64(29);

    let mut scalar_model = model;
    let mut optimizer = ModelOptimizer::new(config.adam, &scalar_model);
    let mut grads = scalar_model.alloc_grads();
    let mut occupancy = OccupancyGrid::new(config.occupancy_resolution, config.occupancy_threshold);
    occupancy.fill();
    let mut ctx = PointContext::new();
    let mut scalar_rng = SmallRng::seed_from_u64(29);

    let steps = if smoke { 1 } else { 10 };
    let mut samples = 0usize;
    let mut calls = 0usize;
    let (batched, scalar, speedup) = time_paired(
        steps,
        || {
            samples += trainer.step(&dataset, &mut batched_rng).samples;
            calls += 1;
        },
        || {
            black_box(scalar_train_step(
                &mut scalar_model,
                &mut optimizer,
                &mut grads,
                &occupancy,
                &dataset,
                &config,
                &mut ctx,
                &mut scalar_rng,
            ));
        },
    );
    // Batch contents vary per step; report the mean samples per step
    // (both sides process the same batches, so one count serves both).
    let samples = samples / calls.max(1);
    BenchLine {
        name: "train_step",
        points: samples,
        batched_pts_per_s: samples as f64 / batched,
        scalar_pts_per_s: Some(samples as f64 / scalar),
        speedup: Some(speedup),
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.1}"))
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_perf.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Single-thread: the microbenchmark speedups measure kernel
    // layout, not the PR-1 worker pool.
    set_thread_override(Some(1));
    let lines = [
        bench_encode(smoke),
        bench_mlp_forward(smoke),
        bench_mlp_forward_int8(smoke),
        bench_render(smoke),
        bench_train_step(smoke),
    ];
    set_thread_override(None);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"fusion3d-perf-v1\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str("  \"threads\": 1,\n");
    json.push_str("  \"benches\": [\n");
    for (i, line) in lines.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"points\": {}, \"batched_pts_per_s\": {:.1}, \
             \"scalar_pts_per_s\": {}, \"speedup\": {}}}{}\n",
            line.name,
            line.points,
            line.batched_pts_per_s,
            json_opt(line.scalar_pts_per_s),
            line.speedup.map_or_else(|| "null".to_string(), |x| format!("{x:.2}")),
            if i + 1 == lines.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    if let Err(err) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {err}");
        std::process::exit(1);
    }

    println!(
        "{:<18} {:>12} {:>16} {:>16} {:>8}",
        "bench", "points", "batched pts/s", "scalar pts/s", "speedup"
    );
    for line in &lines {
        println!(
            "{:<18} {:>12} {:>16.0} {:>16} {:>8}",
            line.name,
            line.points,
            line.batched_pts_per_s,
            json_opt(line.scalar_pts_per_s),
            line.speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
        );
    }
    println!("wrote {out_path}");
}
