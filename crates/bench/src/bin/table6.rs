//! Regenerates Table VI (Stage-I T1 ablation).
fn main() {
    fusion3d_bench::experiments::table6::run();
}
