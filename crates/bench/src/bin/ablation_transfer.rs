//! Regenerates the TensoRF transfer ablation.
fn main() {
    fusion3d_bench::experiments::ablations::run_transfer();
    fusion3d_bench::experiments::ablations::run_dense_moe();
}
