//! Runs every table and figure reproduction in paper order.
use fusion3d_bench::experiments as e;

fn main() {
    println!("Fusion-3D (MICRO 2024) reproduction: all tables and figures\n");
    e::table1::run();
    e::table2::run();
    e::fig3::run();
    e::table3::run();
    e::fig8::run();
    e::fig9_fig10::run_fig9();
    e::fig9_fig10::run_fig10();
    e::fig11::run();
    e::table4_table5::run_table4();
    e::table4_table5::run_table5();
    e::table6::run();
    e::fig12::run();
    e::fig13::run_fig13a();
    e::fig13::run_fig13b();
    e::fig14::run();
    e::ablations::run_t2();
    e::ablations::run_breakdown();
    e::ablations::run_transfer();
    e::ablations::run_dense_moe();
    e::scaling::run();
}
