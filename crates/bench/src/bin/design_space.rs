//! Explores the single-chip design space: interpolation-core sweep and
//! DVFS operating points on a representative workload.
use fusion3d_bench::support::{print_table, scene_trace};
use fusion3d_core::design_space::{sweep_interp_cores, sweep_voltage};
use fusion3d_nerf::scenes::SyntheticScene;

fn main() {
    let trace = scene_trace(SyntheticScene::Lego);
    let cores = sweep_interp_cores(&trace, &[3, 5, 10, 16, 24]);
    let body: Vec<Vec<String>> = cores
        .iter()
        .map(|p| {
            vec![
                p.interp_cores.to_string(),
                format!("{:.1}", p.inference_pts / 1e6),
                format!("{:.1}", p.training_pts / 1e6),
                format!("{:.2}", p.power_w),
                format!("{:.1}", p.area_mm2),
                format!("{:.0}", p.inference_per_watt() / 1e6),
            ]
        })
        .collect();
    print_table(
        "Design space: interpolation cores (lego workload)",
        &["Cores", "Inf M/s", "Trn M/s", "Power W", "Area mm^2", "M/s/W"],
        &body,
    );

    let volts = sweep_voltage(&trace, &[0.65, 0.75, 0.85, 0.95, 1.05]);
    let body: Vec<Vec<String>> = volts
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.clock_mhz),
                format!("{:.1}", p.inference_pts / 1e6),
                format!("{:.2}", p.power_w),
                format!("{:.0}", p.inference_per_watt() / 1e6),
            ]
        })
        .collect();
    print_table(
        "Design space: DVFS operating points",
        &["MHz", "Inf M/s", "Power W", "M/s/W"],
        &body,
    );
    println!(
        "\nThe published pair sits on this curve: the 5-core prototype for\n\
         mid-range devices, the 10-core scaled-up chip matching Stage II to one\n\
         point per cycle."
    );
}
