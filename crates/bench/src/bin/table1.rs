//! Regenerates Table I.
fn main() {
    fusion3d_bench::experiments::table1::run();
}
