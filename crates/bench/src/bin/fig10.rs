//! Regenerates Fig. 10 (breakdowns and the V/F curve).
fn main() {
    fusion3d_bench::experiments::fig9_fig10::run_fig10();
}
