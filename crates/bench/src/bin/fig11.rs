//! Regenerates Fig. 11 (per-scene speedups vs baselines).
fn main() {
    fusion3d_bench::experiments::fig11::run();
}
