//! Regenerates the Technique T2 ablation (shared pipeline + FIEM).
fn main() {
    fusion3d_bench::experiments::ablations::run_t2();
}
