//! Multi-scene serving harness: replays Poisson/Zipf request traces
//! against a fresh [`ServeSim`] at a sweep of offered loads and
//! reports latency percentiles, throughput, and registry cache
//! behavior across all eight synthetic scenes.
//!
//! Emits `BENCH_serve.json`. Every reported number is a simulated
//! quantity (cycles, counts, checksums) — never wall clock — so the
//! file is bitwise-reproducible across runs and worker counts.
//! `--smoke` runs a short trace at low resolution (wired into
//! `scripts/check.sh`); `--out PATH` overrides the output path;
//! `--threads N` pins the kernel worker pool, which `check.sh` uses
//! to diff a 1-thread run against a 4-thread run byte for byte.

use fusion3d_obs::MetricValue;
use fusion3d_par::set_thread_override;
use fusion3d_serve::{generate, SceneId, ServeConfig, ServeOutcome, ServeSim, TrafficConfig};

/// Simulated accelerator clock used to convert cycles to seconds in
/// the derived (`*_ms`, `*_rps`) fields. Cycle counts are primary.
const CLOCK_HZ: f64 = 1.0e9;

/// One offered-load point of the sweep.
struct LoadPoint {
    mean_interarrival_cycles: f64,
    outcome: ServeOutcome,
    queue_depth_p99: u64,
}

/// Sweeps offered load from idle to past saturation. Each point
/// replays a fresh (cold-cache) simulation so points are independent
/// and their hit rates comparable.
fn run_sweep(smoke: bool) -> (ServeConfig, TrafficConfig, Vec<LoadPoint>) {
    let config = ServeConfig {
        resolution: if smoke { 16 } else { 40 },
        queue_capacity: 32,
        ..ServeConfig::default()
    };
    let traffic = TrafficConfig {
        scene_count: 8,
        requests: if smoke { 48 } else { 400 },
        mean_interarrival_cycles: 0.0, // overridden per point
        zipf_exponent: 0.9,
        path_len: config.path_len as u32,
    };
    let means: &[f64] = if smoke {
        &[80_000.0, 20_000.0, 5_000.0]
    } else {
        &[160_000.0, 80_000.0, 40_000.0, 20_000.0, 10_000.0]
    };
    let mut points = Vec::new();
    for (k, &mean) in means.iter().enumerate() {
        let mut sim = match ServeSim::synthetic(8, &config) {
            Ok(sim) => sim,
            Err(err) => {
                eprintln!("serve bench: cannot build simulation: {err}");
                std::process::exit(1);
            }
        };
        let trace = generate(
            &TrafficConfig { mean_interarrival_cycles: mean, ..traffic },
            0xF3D0 + k as u64,
        );
        let outcome = match sim.run_trace(&trace) {
            Ok(outcome) => outcome,
            Err(err) => {
                eprintln!("serve bench: replay failed: {err}");
                std::process::exit(1);
            }
        };
        let queue_depth_p99 = match outcome.report.metrics.get("serve.queue_depth") {
            Some(metric) => match &metric.value {
                MetricValue::Histogram(h) => h.percentile_upper_bound(0.99),
                _ => 0,
            },
            None => 0,
        };
        points.push(LoadPoint { mean_interarrival_cycles: mean, outcome, queue_depth_p99 });
    }
    (config, traffic, points)
}

fn cycles_to_ms(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ * 1e3
}

fn render_json(
    smoke: bool,
    config: &ServeConfig,
    traffic: &TrafficConfig,
    points: &[LoadPoint],
    scene_rows: &[(String, u64, u64)],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"fusion3d-serve-v1\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"clock_ghz\": {:.1},\n", CLOCK_HZ / 1e9));
    json.push_str(&format!("  \"scenes\": {},\n", scene_rows.len()));
    json.push_str(&format!("  \"budget_bytes\": {},\n", config.budget_bytes));
    json.push_str(&format!("  \"executors\": {},\n", config.executors));
    json.push_str(&format!("  \"max_batch\": {},\n", config.max_batch));
    json.push_str(&format!("  \"queue_capacity\": {},\n", config.queue_capacity));
    json.push_str(&format!("  \"resolution\": {},\n", config.resolution));
    json.push_str(&format!("  \"requests_per_point\": {},\n", traffic.requests));
    json.push_str(&format!("  \"zipf_exponent\": {:.2},\n", traffic.zipf_exponent));
    json.push_str("  \"load_points\": [\n");
    for (k, point) in points.iter().enumerate() {
        let o = &point.outcome;
        json.push_str(&format!(
            "    {{\"mean_interarrival_cycles\": {:.1}, \"offered_rps\": {:.1}, \
             \"completed\": {}, \"rejected\": {}, \"throughput_rps\": {:.1}, \
             \"p50_latency_cycles\": {}, \"p99_latency_cycles\": {}, \
             \"p50_latency_ms\": {:.4}, \"p99_latency_ms\": {:.4}, \
             \"hit_rate\": {:.4}, \"misses\": {}, \"evictions\": {}, \
             \"bytes_loaded\": {}, \"queue_depth_p99\": {}, \
             \"response_checksum\": \"{:016x}\"}}{}\n",
            point.mean_interarrival_cycles,
            CLOCK_HZ / point.mean_interarrival_cycles,
            o.completed,
            o.rejected,
            o.throughput_rps(CLOCK_HZ),
            o.latency_percentile(0.5),
            o.latency_percentile(0.99),
            cycles_to_ms(o.latency_percentile(0.5)),
            cycles_to_ms(o.latency_percentile(0.99)),
            o.hit_rate(),
            o.misses,
            o.evictions,
            o.bytes_loaded,
            point.queue_depth_p99,
            o.response_checksum,
            if k + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scene_table\": [\n");
    for (k, (name, bytes, completed)) in scene_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"container_bytes\": {bytes}, \
             \"requests_completed\": {completed}}}{}\n",
            if k + 1 == scene_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let mut smoke = false;
    let mut threads = 1usize;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => {
                    eprintln!("--threads requires a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    set_thread_override(Some(threads));
    let (config, traffic, points) = run_sweep(smoke);
    set_thread_override(None);

    // Aggregate the per-scene completion counts across the sweep and
    // price each scene's container for the table.
    let store = fusion3d_serve::SceneStore::synthetic(8);
    let mut scene_rows: Vec<(String, u64, u64)> = (0..store.len())
        .map(|k| {
            let id = SceneId(k as u32);
            let name = store.name(id).unwrap_or("?").to_string();
            let bytes = store.header(id).map(|h| h.container_bytes()).unwrap_or(0);
            (name, bytes, 0u64)
        })
        .collect();
    for point in &points {
        for (k, &count) in point.outcome.per_scene_completed.iter().enumerate() {
            if let Some(row) = scene_rows.get_mut(k) {
                row.2 += count;
            }
        }
    }

    let json = render_json(smoke, &config, &traffic, &points, &scene_rows);
    if std::fs::write(&out_path, &json).is_err() {
        eprintln!("failed to write {out_path}");
        std::process::exit(1);
    }

    println!(
        "{:>12} {:>12} {:>10} {:>9} {:>14} {:>14} {:>9}",
        "offered_rps", "tput_rps", "completed", "rejected", "p50_ms", "p99_ms", "hit_rate"
    );
    for point in &points {
        let o = &point.outcome;
        println!(
            "{:>12.1} {:>12.1} {:>10} {:>9} {:>14.4} {:>14.4} {:>9.4}",
            CLOCK_HZ / point.mean_interarrival_cycles,
            o.throughput_rps(CLOCK_HZ),
            o.completed,
            o.rejected,
            cycles_to_ms(o.latency_percentile(0.5)),
            cycles_to_ms(o.latency_percentile(0.99)),
            o.hit_rate(),
        );
    }
    println!("wrote {out_path}");
}
