//! Shared infrastructure for the experiment harness: deterministic
//! scene workloads, table formatting, and paper-scale constants.

use fusion3d_nerf::camera::{orbit_poses, Camera};
use fusion3d_nerf::math::Vec3;
use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::pipeline::{trace_frame, FrameTrace};
use fusion3d_nerf::sampler::SamplerConfig;
use fusion3d_nerf::scenes::{LargeScene, ProceduralScene, SyntheticScene};
use fusion3d_par::Pool;

/// Resolution of the ground-truth occupancy grids used to drive the
/// simulator traces.
pub const OCCUPANCY_RES: u32 = 32;

/// Trace resolution: workload statistics are intensive (per-ray), so
/// traces run at 160×160 and FPS numbers scale to the paper's 800×800.
pub const TRACE_RES: u32 = 160;

/// The paper's evaluation frame resolution.
pub const PAPER_RES: u32 = 800;

/// Rays in a paper-scale frame.
pub const PAPER_RAYS: u64 = (PAPER_RES as u64) * (PAPER_RES as u64);

/// Scaling factor from trace frames to paper frames.
pub fn frame_scale() -> f64 {
    (PAPER_RAYS as f64) / (TRACE_RES as f64 * TRACE_RES as f64)
}

/// The sampler settings used for all simulator traces: a fine lattice
/// (the paper quotes up to 255 samples per ray), so occupancy skipping
/// matters and per-scene Stage-I costs spread as in Table VI.
pub fn trace_sampler() -> SamplerConfig {
    SamplerConfig { steps_per_diagonal: 512, max_samples_per_ray: 256 }
}

/// A deterministic evaluation camera orbiting the scene.
pub fn trace_camera(resolution: u32) -> Camera {
    let pose = orbit_poses(Vec3::new(0.5, 0.4, 0.5), 1.25, 8)[2];
    Camera::new(pose, resolution, resolution, 0.9)
}

/// Ground-truth occupancy grid of a synthetic scene.
pub fn scene_occupancy(scene: SyntheticScene) -> OccupancyGrid {
    ProceduralScene::synthetic(scene).occupancy_grid(OCCUPANCY_RES)
}

/// Ground-truth occupancy grid of a large scene.
pub fn large_scene_occupancy(scene: LargeScene) -> OccupancyGrid {
    ProceduralScene::large(scene).occupancy_grid(OCCUPANCY_RES)
}

/// The Stage-I workload trace of a synthetic scene's evaluation frame.
pub fn scene_trace(scene: SyntheticScene) -> FrameTrace {
    trace_frame(&scene_occupancy(scene), &trace_camera(TRACE_RES), &trace_sampler())
}

/// The Stage-I workload trace of a large scene's evaluation frame.
pub fn large_scene_trace(scene: LargeScene) -> FrameTrace {
    trace_frame(&large_scene_occupancy(scene), &trace_camera(TRACE_RES), &trace_sampler())
}

/// Evaluates `work` on every scene in `scenes` across the worker
/// pool, returning the results in scene order. The experiment tables
/// sweep independent per-scene simulations, so the whole sweep fans
/// out; the scene-order result vector keeps downstream averaging and
/// printing identical to a serial loop for any `FUSION3D_THREADS`.
pub fn for_each_scene<S, T, F>(scenes: &[S], work: F) -> Vec<T>
where
    S: Copy + Sync,
    T: Send,
    F: Fn(S) -> T + Sync,
{
    Pool::new().parallel_chunks(scenes.len(), 1, |index, _| work(scenes[index]))
}

/// Partitions a scene occupancy grid into `experts` per-chip gates,
/// emulating the *partial* spatial specialization MoE training
/// produces (Fig. 8: regions are dominated by one expert, but many are
/// shared by two or more). Cells deep inside another expert's
/// azimuthal sector (the inner half around its center) are pruned from
/// an expert's gate; boundary regions stay shared by all.
pub fn partition_occupancy(full: &OccupancyGrid, experts: usize) -> Vec<OccupancyGrid> {
    let mut grids: Vec<OccupancyGrid> =
        (0..experts).map(|_| OccupancyGrid::new(full.resolution(), full.threshold())).collect();
    if experts == 1 {
        grids[0] = full.clone();
        return grids;
    }
    let sector = std::f32::consts::TAU / experts as f32;
    for cell in full.occupied_cells() {
        let c = full.cell_center(cell);
        let angle = (c.z - 0.5).atan2(c.x - 0.5) + std::f32::consts::PI;
        for (e, grid) in grids.iter_mut().enumerate() {
            // Angular distance to each *other* expert's sector center.
            let strongly_owned_by_other = (0..experts).any(|m| {
                if m == e {
                    return false;
                }
                let center = (m as f32 + 0.5) * sector;
                let mut d = (angle - center).abs();
                if d > std::f32::consts::PI {
                    d = std::f32::consts::TAU - d;
                }
                d < 0.25 * sector
            });
            if !strongly_owned_by_other {
                grid.set_cell(cell, true);
            }
        }
    }
    grids
}

/// Formats one table row with fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
}

/// Prints a titled table: a header row, a separator, and body rows.
pub fn print_table(title: &str, header: &[&str], body: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in body {
        for (i, cell) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    println!("\n=== {title} ===");
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", row(&header_cells, &widths));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for r in body {
        println!("{}", row(r, &widths));
    }
}

/// Unwraps a metric the static device tables are known to report.
/// Centralizes the panic so experiment code stays free of bare
/// `expect` calls on spec-table lookups.
pub fn reported(v: Option<f64>, what: &str) -> f64 {
    match v {
        Some(x) => x,
        // lint: allow(p1): the baselines device tables are static data
        None => panic!("device spec missing: {what}"),
    }
}

/// Formats an optional metric, using the paper's N/R marker for
/// missing cells.
pub fn opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "N/R".to_string(),
    }
}

/// Formats a yes/no cell.
pub fn yn(v: bool) -> String {
    if v { "Yes" } else { "No" }.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_nonempty() {
        let a = scene_trace(SyntheticScene::Lego);
        let b = scene_trace(SyntheticScene::Lego);
        assert_eq!(a.total_samples, b.total_samples);
        assert!(a.total_samples > 0);
        assert_eq!(a.ray_count() as u64, (TRACE_RES as u64).pow(2));
    }

    #[test]
    fn sparse_scenes_have_fewer_samples() {
        let mic = scene_trace(SyntheticScene::Mic);
        let ship = scene_trace(SyntheticScene::Ship);
        assert!(
            mic.total_samples * 2 < ship.total_samples,
            "mic {} vs ship {}",
            mic.total_samples,
            ship.total_samples
        );
    }

    #[test]
    fn partition_covers_and_overlaps() {
        let full = scene_occupancy(SyntheticScene::Hotdog);
        let parts = partition_occupancy(&full, 4);
        assert_eq!(parts.len(), 4);
        // Every occupied cell is owned by at least one expert.
        for cell in full.occupied_cells() {
            assert!(parts.iter().any(|g| g.is_cell_occupied(cell)));
        }
        // Each expert holds a strict subset.
        let total: f64 = parts.iter().map(|g| g.occupancy_ratio()).sum();
        assert!(total >= full.occupancy_ratio());
        for p in &parts {
            assert!(p.occupancy_ratio() < full.occupancy_ratio());
        }
    }

    #[test]
    fn for_each_scene_preserves_scene_order() {
        let scenes = [1usize, 2, 3, 4, 5, 6, 7];
        let out = for_each_scene(&scenes, |s| s * 10);
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(opt(Some(1.234), 2), "1.23");
        assert_eq!(opt(None, 2), "N/R");
        assert_eq!(yn(true), "Yes");
        assert_eq!(yn(false), "No");
    }
}
