//! One module per paper table/figure; each exposes `run*` functions
//! that print the reproduced rows/series.

pub mod ablations;
pub mod breakdown;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig3;
pub mod fig8;
pub mod fig9_fig10;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4_table5;
pub mod table6;
