//! Per-module cycle/energy breakdown reports from the observability
//! trace stream (paper Tab. III / Fig. 14 territory).
//!
//! For each of the eight synthetic scenes this runs the cycle-stepped
//! pipeline simulator under [`fusion3d_core::observe::observe_frame`],
//! which attributes every simulated cycle to exactly one stage and
//! splits frame energy across the six chip modules. The tables printed
//! by `--bin breakdown` are rendered from the resulting
//! [`fusion3d_obs::Report`]s — the same JSON-lines stream an external
//! consumer would ingest — so the binary doubles as a worked example
//! for `docs/OBSERVABILITY.md`.

use fusion3d_core::chip::FusionChip;
use fusion3d_core::config::Module;
use fusion3d_core::observe::{observe_frame, FrameObservation};
use fusion3d_core::pipeline_sim::BufferConfig;
use fusion3d_nerf::pipeline::trace_frame;
use fusion3d_nerf::scenes::SyntheticScene;
use fusion3d_obs::{MetricValue, Report};

use crate::support::{
    for_each_scene, print_table, scene_occupancy, trace_camera, trace_sampler, TRACE_RES,
};

/// One scene's observed frame: the report (spans + metrics) and the
/// raw simulation numbers it was built from.
#[derive(Debug, Clone)]
pub struct SceneBreakdown {
    /// Scene the frame was traced from.
    pub scene: SyntheticScene,
    /// The populated observability report.
    pub report: Report,
    /// Simulation results and span handles for direct assertions.
    pub frame: FrameObservation,
}

/// Observes one scene's evaluation frame at an explicit trace
/// resolution (tests use a smaller frame than the experiment binary).
pub fn scene_breakdown_at(scene: SyntheticScene, resolution: u32) -> SceneBreakdown {
    let chip = FusionChip::scaled_up();
    let trace = trace_frame(&scene_occupancy(scene), &trace_camera(resolution), &trace_sampler());
    let mut report = Report::new(scene.name());
    let frame = observe_frame(&chip, &trace, &BufferConfig::fusion3d(), false, &mut report);
    SceneBreakdown { scene, report, frame }
}

/// Observes one scene at the standard trace resolution.
pub fn scene_breakdown(scene: SyntheticScene) -> SceneBreakdown {
    scene_breakdown_at(scene, TRACE_RES)
}

/// Observes all eight synthetic scenes at `resolution`, fanned out
/// across the worker pool, in scene order.
pub fn all_scene_breakdowns_at(resolution: u32) -> Vec<SceneBreakdown> {
    for_each_scene(&SyntheticScene::ALL, |scene| scene_breakdown_at(scene, resolution))
}

/// Reads a gauge out of a report's metric registry (0.0 if absent —
/// the callers only look up gauges [`observe_frame`] always records).
fn gauge(report: &Report, name: &str) -> f64 {
    match report.metrics.get(name).map(|m| &m.value) {
        Some(MetricValue::Gauge(g)) => *g,
        _ => 0.0,
    }
}

/// Percentage formatting for the cycle-share columns.
fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        return "0.0%".to_string();
    }
    format!("{:.1}%", 100.0 * part as f64 / total as f64)
}

/// Prints the per-stage cycle-attribution table.
pub fn print_cycle_table(rows: &[SceneBreakdown]) {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|sb| {
            let a = &sb.frame.attribution;
            let total = a.total();
            vec![
                sb.scene.name().to_string(),
                total.to_string(),
                a.sampling.to_string(),
                pct(a.sampling, total),
                a.interp.to_string(),
                pct(a.interp, total),
                a.postproc.to_string(),
                pct(a.postproc, total),
            ]
        })
        .collect();
    print_table(
        "Per-stage cycle attribution (stepped pipeline, exact)",
        &["scene", "cycles", "sampling", "%", "interp", "%", "postproc", "%"],
        &body,
    );
}

/// Prints the per-module energy table (all six chip modules, mJ).
pub fn print_energy_table(rows: &[SceneBreakdown]) {
    let mut header = vec!["scene", "total mJ"];
    let slugs: Vec<&'static str> = Module::ALL.iter().map(|m| m.slug()).collect();
    header.extend(slugs.iter().copied());
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|sb| {
            let mut cells = vec![
                sb.scene.name().to_string(),
                format!("{:.3}", gauge(&sb.report, "energy.total_j") * 1e3),
            ];
            for slug in &slugs {
                let joules = gauge(&sb.report, &format!("energy.{slug}_j"));
                cells.push(format!("{:.3}", joules * 1e3));
            }
            cells
        })
        .collect();
    print_table("Per-module energy breakdown (mJ per frame)", &header, &body);
}

/// Prints the Stage-I workload table that explains the per-scene
/// spreads (Tab. VI): hit rate, samples/ray, NoC peak utilization.
pub fn print_workload_table(rows: &[SceneBreakdown]) {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|sb| {
            vec![
                sb.scene.name().to_string(),
                format!("{:.3}", gauge(&sb.report, "frame.hit_rate")),
                format!("{:.1}", gauge(&sb.report, "frame.samples_per_ray")),
                format!("{:.3}", gauge(&sb.report, "sampling.core_utilization")),
                format!("{:.3}", gauge(&sb.report, "noc.peak_utilization")),
                format!("{:.3}", gauge(&sb.report, "pipeline.overhead_fraction")),
            ]
        })
        .collect();
    print_table(
        "Per-scene workload shape",
        &["scene", "hit rate", "samples/ray", "core util", "noc peak", "pipe ovh"],
        &body,
    );
}

/// Runs the full breakdown experiment: observe all scenes, print the
/// three tables, and show one scene's rendered span tree as the worked
/// example. With `jsonl` set, also dumps every scene's deterministic
/// JSON-lines stream (the machine-readable export).
pub fn run(jsonl: bool) {
    let rows = all_scene_breakdowns_at(TRACE_RES);
    print_cycle_table(&rows);
    print_energy_table(&rows);
    print_workload_table(&rows);
    if let Some(example) = rows.first() {
        println!("\n=== Span tree: {} (worked example) ===", example.scene.name());
        print!("{}", example.report.render_table());
    }
    if jsonl {
        println!("\n=== Deterministic JSON-lines export ===");
        for sb in &rows {
            print!("{}", sb.report.deterministic_jsonl());
        }
    }
}
