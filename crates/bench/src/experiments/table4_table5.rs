//! Table IV (multi-chip system vs cloud accelerators) and Table V
//! (per-scene speedup/energy vs the 2080 Ti on the seven NeRF-360
//! scenes).

use crate::support::{
    for_each_scene, large_scene_occupancy, opt, partition_occupancy, print_table, reported,
    trace_camera, trace_sampler, TRACE_RES,
};
use fusion3d_baselines::devices;
use fusion3d_multichip::system::MultiChipSystem;
use fusion3d_nerf::sampler::{sample_ray, RayWorkload};
use fusion3d_nerf::scenes::LargeScene;

/// Simulated multi-chip result for one large scene.
#[derive(Debug, Clone, Copy)]
pub struct LargeSceneResult {
    /// Scene.
    pub scene: LargeScene,
    /// Inference points/s at the system level.
    pub inference_pts: f64,
    /// Training points/s.
    pub training_pts: f64,
    /// Inference energy per point, nJ.
    pub inference_nj: f64,
    /// Training energy per point, nJ.
    pub training_nj: f64,
    /// Chip workload imbalance (max/mean).
    pub imbalance: f64,
    /// Retained samples per marching step — a GPU's SIMT lanes idle on
    /// steps that yield no sample, so this is its warp efficiency on
    /// the scene (dedicated sampling cores don't pay it).
    pub warp_efficiency: f64,
}

/// Builds per-chip Stage-I workloads for a large scene: the scene's
/// ground-truth occupancy is partitioned into four expert gates
/// (emulating the trained MoE specialization of Fig. 8) and every chip
/// marches the full ray set through its own gate.
pub fn per_chip_workloads(scene: LargeScene, chips: usize) -> Vec<Vec<RayWorkload>> {
    let full = large_scene_occupancy(scene);
    let gates = partition_occupancy(&full, chips);
    let camera = trace_camera(TRACE_RES);
    let sampler = trace_sampler();
    gates
        .iter()
        .map(|gate| camera.rays().map(|(_, _, ray)| sample_ray(&ray, gate, &sampler).1).collect())
        .collect()
}

/// Simulates the four-chip system on one large scene.
pub fn simulate_large_scene(scene: LargeScene) -> LargeSceneResult {
    let system = MultiChipSystem::fusion3d();
    let workloads = per_chip_workloads(scene, system.config().chips);
    let inf = system.simulate(&workloads, false);
    let train = system.simulate(&workloads, true);
    // Unique scene points and marching steps from the full-gate trace
    // (the union of the per-chip sample sets).
    let full = large_scene_occupancy(scene);
    let camera = trace_camera(TRACE_RES);
    let sampler = trace_sampler();
    let mut unique = 0u64;
    let mut steps = 0u64;
    for (_, _, ray) in camera.rays() {
        let (_, wl) = sample_ray(&ray, &full, &sampler);
        unique += wl.total_samples() as u64;
        steps += wl.total_steps() as u64;
    }
    let power = system.config().total_power_w();
    let inf_pts = unique as f64 / inf.total_seconds;
    let train_pts = unique as f64 / train.total_seconds;
    LargeSceneResult {
        scene,
        inference_pts: inf_pts,
        training_pts: train_pts,
        inference_nj: power / inf_pts * 1e9,
        training_nj: power / train_pts * 1e9,
        imbalance: inf.imbalance(),
        warp_efficiency: unique as f64 / steps.max(1) as f64,
    }
}

/// Per-scene GPU throughput model: the 2080 Ti's published mean rate,
/// scaled by each scene's warp efficiency relative to the dataset
/// mean. A GPU marches rays on SIMT lanes, so steps that retain no
/// sample still occupy a lane — and the divergence compounds through
/// the gather and MLP kernels launched on partially-empty warps, hence
/// the super-linear exponent. The accelerator's dedicated sampling
/// cores pay neither cost.
pub fn gpu_rates_per_scene(results: &[LargeSceneResult], gpu_mean_pts: f64) -> Vec<f64> {
    const DIVERGENCE_EXPONENT: f64 = 2.0;
    let mean_eff: f64 =
        results.iter().map(|r| r.warp_efficiency).sum::<f64>() / results.len() as f64;
    results
        .iter()
        .map(|r| gpu_mean_pts * (r.warp_efficiency / mean_eff).powf(DIVERGENCE_EXPONENT))
        .collect()
}

/// Simulates all seven NeRF-360-class scenes.
pub fn all_large_scenes() -> Vec<LargeSceneResult> {
    for_each_scene(&LargeScene::ALL, simulate_large_scene)
}

/// Prints the Table IV reproduction.
pub fn run_table4() {
    let system = MultiChipSystem::fusion3d();
    let cfg = system.config();
    let results = all_large_scenes();
    let mean_inf = results.iter().map(|r| r.inference_pts).sum::<f64>() / results.len() as f64;
    let mean_train = results.iter().map(|r| r.training_pts).sum::<f64>() / results.len() as f64;
    let power = cfg.total_power_w();

    let mut body = Vec::new();
    for d in devices::table4_baselines() {
        body.push(vec![
            d.name.to_string(),
            format!("{} nm", d.process_nm),
            format!("{:.1}", d.die_area_mm2),
            format!("{:.0}", d.clock_mhz),
            format!("{:.0}", d.sram_kb),
            opt(d.typical_power_w, 1),
            opt(d.inference_mpts_per_watt(), 1),
            opt(d.training_mpts_per_watt(), 1),
            opt(d.offchip_bandwidth_gbs, 1),
        ]);
    }
    body.push(vec![
        "This Work".to_string(),
        "28 nm".to_string(),
        format!("{:.1}", cfg.total_area_mm2()),
        "600".to_string(),
        format!("{:.0}", cfg.total_sram_kb()),
        format!("{:.1}", power),
        format!("{:.1}", mean_inf / power / 1e6),
        format!("{:.1}", mean_train / power / 1e6),
        "0.6".to_string(),
    ]);
    print_table(
        "Table IV: multi-chip system vs. cloud NeRF accelerators",
        &[
            "Device",
            "Process",
            "Area mm^2",
            "MHz",
            "SRAM KB",
            "Power W",
            "Inf M/s/W",
            "Trn M/s/W",
            "BW GB/s",
        ],
        &body,
    );
}

/// Prints the Table V reproduction.
pub fn run_table5() {
    let gpu = devices::rtx_2080ti();
    let gpu_inf = reported(gpu.inference_mpts, "2080Ti inference") * 1e6;
    let gpu_train = reported(gpu.training_mpts, "2080Ti training") * 1e6;
    let gpu_power = reported(gpu.typical_power_w, "2080Ti power");

    let results = all_large_scenes();
    let gpu_inf_rates = gpu_rates_per_scene(&results, gpu_inf);
    let gpu_train_rates = gpu_rates_per_scene(&results, gpu_train);

    let mut body = Vec::new();
    for ((r, g_inf), g_train) in results.iter().zip(&gpu_inf_rates).zip(&gpu_train_rates) {
        let gpu_inf_nj = gpu_power / g_inf * 1e9;
        let gpu_train_nj = gpu_power / g_train * 1e9;
        body.push(vec![
            r.scene.name().to_string(),
            format!("{:.1}x", r.inference_pts / g_inf),
            format!("{:.1}x", r.training_pts / g_train),
            format!("{:.0}x", gpu_inf_nj / r.inference_nj),
            format!("{:.0}x", gpu_train_nj / r.training_nj),
            format!("{:.2}", r.imbalance),
        ]);
    }
    print_table(
        "Table V: speedup & energy saving vs Nvidia 2080Ti on NeRF-360 scenes",
        &["Scene", "Inf speedup", "Trn speedup", "Inf energy", "Trn energy", "Imbalance"],
        &body,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multichip_beats_2080ti_on_every_scene() {
        let gpu = devices::rtx_2080ti();
        let results = all_large_scenes();
        let gpu_inf = gpu_rates_per_scene(&results, gpu.inference_mpts.unwrap() * 1e6);
        let gpu_train = gpu_rates_per_scene(&results, gpu.training_mpts.unwrap() * 1e6);
        let gpu_power = gpu.typical_power_w.unwrap();
        for ((r, g_inf), g_train) in results.iter().zip(&gpu_inf).zip(&gpu_train) {
            let inf_speedup = r.inference_pts / g_inf;
            let train_speedup = r.training_pts / g_train;
            // Table V: speedups in the 3-10x band, never below 1.
            assert!(
                (1.5..=25.0).contains(&inf_speedup),
                "{}: inference speedup {inf_speedup}",
                r.scene.name()
            );
            assert!(
                (1.5..=25.0).contains(&train_speedup),
                "{}: training speedup {train_speedup}",
                r.scene.name()
            );
            // Energy efficiency in the hundreds (paper: 128x-380x).
            let gain = (gpu_power / g_inf * 1e9) / r.inference_nj;
            assert!(gain > 50.0, "{}: energy gain {gain}", r.scene.name());
        }
    }

    #[test]
    fn sparse_scenes_show_the_largest_speedup() {
        // Table V: bicycle (sparse foreground, worst GPU warp
        // efficiency) shows the largest speedup; garden (dense) the
        // smallest band.
        let results = all_large_scenes();
        let gpu = devices::rtx_2080ti();
        let gpu_inf = gpu_rates_per_scene(&results, gpu.inference_mpts.unwrap() * 1e6);
        let speedup: std::collections::HashMap<&str, f64> = results
            .iter()
            .zip(&gpu_inf)
            .map(|(r, g)| (r.scene.name(), r.inference_pts / g))
            .collect();
        assert!(
            speedup["bicycle"] > speedup["garden"],
            "bicycle {} vs garden {}",
            speedup["bicycle"],
            speedup["garden"]
        );
        // A real spread exists across scenes, as in the paper's
        // 3.1x-9.2x band.
        let max = speedup.values().cloned().fold(0.0, f64::max);
        let min = speedup.values().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.3, "spread {max}/{min}");
    }

    #[test]
    fn system_throughput_per_watt_beats_cloud_baselines() {
        let system = MultiChipSystem::fusion3d();
        let results = all_large_scenes();
        let mean_inf = results.iter().map(|r| r.inference_pts).sum::<f64>() / results.len() as f64;
        let per_watt = mean_inf / system.config().total_power_w() / 1e6;
        // Table IV: 98.5 M/s/W vs NeuRex-Server's 50 — ours roughly
        // 2x the best baseline, orders over the GPU's 0.4.
        assert!(per_watt > 50.0, "per-watt {per_watt}");
        assert!(per_watt > 100.0 * 0.4, "vs GPU");
    }
}
