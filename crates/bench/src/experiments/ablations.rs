//! Sec. VI-C ablations without their own table/figure number: the T2
//! shared-pipeline and FIEM study, the per-stage speedup breakdown,
//! and the TensoRF transfer study.

use crate::support::{for_each_scene, print_table, scene_trace};
use fusion3d_arith::cost::{compare_fiem, WEIGHT_BITS};
use fusion3d_baselines::devices;
use fusion3d_core::chip::FusionChip;
use fusion3d_core::interp::{reconfigured_area_fraction, shared_area_fraction, DATAPATH_BLOCKS};
use fusion3d_core::transfer::tensorf_savings;
use fusion3d_nerf::scenes::SyntheticScene;

/// Prints the Technique T2 ablation (shared pipeline + FIEM).
pub fn run_t2() {
    println!("\n=== Ablation: Technique T2 (shared pipeline & FIEM) ===");
    let body: Vec<Vec<String>> = DATAPATH_BLOCKS
        .iter()
        .map(|b| {
            vec![
                b.name.to_string(),
                format!("{:.1}%", b.area_fraction * 100.0),
                if b.directly_shared { "shared" } else { "reconfigured" }.to_string(),
            ]
        })
        .collect();
    print_table("Stage II datapath sharing", &["Block", "Area", "Mode"], &body);
    println!(
        "\nDirectly shared: {:.1}% of Stage II area; reused via reconfiguration: {:.1}%\n(paper: 87.4% / 12.6%).",
        shared_area_fraction() * 100.0,
        reconfigured_area_fraction() * 100.0
    );
    let cmp = compare_fiem(WEIGHT_BITS);
    println!(
        "\nFIEM vs INT2FP+FPMUL at {WEIGHT_BITS}-bit weights: {:.0}% area saving, {:.0}% power saving\n(paper: 55% / 65%).",
        cmp.area_saving * 100.0,
        cmp.power_saving * 100.0
    );

    // T2-1 TDM: the inference task co-scheduled into training's idle
    // memory slot renders a live preview "for free".
    use fusion3d_core::interp::InterpModuleConfig;
    let interp = InterpModuleConfig::fusion3d(10, 10);
    let chip = fusion3d_core::config::ChipConfig::scaled_up();
    let tdm_pts = interp.tdm_inference_points_per_cycle() * chip.cycles_per_second();
    let preview_fps = tdm_pts / (800.0 * 800.0 * 13.0);
    println!(
        "\nTDM co-scheduling (Fig. 6(c)): while training at full rate, the idle\n\
         memory slots host {:.0} M inference points/s — a {preview_fps:.0}-FPS live\n\
         800x800 preview at zero cost to training throughput.",
        tdm_pts / 1e6
    );
}

/// Prints the per-stage speedup breakdown versus the Jetson XNX.
pub fn run_breakdown() {
    println!("\n=== Ablation: speedup breakdown vs Nvidia Jetson XNX ===");
    let chip = FusionChip::scaled_up();
    let xnx = devices::jetson_xnx();
    let per_scene = for_each_scene(&SyntheticScene::ALL, |scene| {
        let trace = scene_trace(scene);
        (
            chip.simulate_frame(&trace).points_per_second(),
            chip.simulate_training_step(&trace).points_per_second(),
        )
    });
    let inf = per_scene.iter().map(|&(i, _)| i).sum::<f64>() / SyntheticScene::ALL.len() as f64;
    let train = per_scene.iter().map(|&(_, t)| t).sum::<f64>() / SyntheticScene::ALL.len() as f64;
    let inf_speedup = inf / (xnx.inference_mpts.unwrap_or(1.0) * 1e6);
    let train_speedup = train / (xnx.training_mpts.unwrap_or(1.0) * 1e6);
    println!(
        "All stages are rate-matched by construction (cores per stage sized to\n\
         Stage II's point rate), so every stage carries the same speedup:\n\
         inference {inf_speedup:.0}x, training {train_speedup:.0}x (paper: 47x and 76x)."
    );
}

/// Prints the TensoRF transfer ablation.
pub fn run_transfer() {
    println!("\n=== Ablation: transferring modules to TensoRF (RT-NeRF) ===");
    let s = tensorf_savings();
    println!(
        "Replacing RT-NeRF's sampling and post-processing modules with this\n\
         work's (keeping its feature module): {:.0}% power and {:.0}% area\n\
         reduction (paper: 39% / 11%). The MoE Level-1 tiling applies to any\n\
         pipeline with an additive output stage; the paper measures a -0.5 PSNR\n\
         cost for 4 x 128^3 TensoRF experts vs one 4 x larger model.",
        s.power * 100.0,
        s.area * 100.0
    );
}

/// Trains TensoRF-class dense-grid models — one large versus an MoE of
/// four small experts — returning `(single_psnr, moe_psnr)`. The
/// paper reports a −0.5 dB difference for 4 × 128³ experts against a
/// single 4×-larger model; this runs the same comparison at reduced
/// scale.
pub fn dense_moe_comparison(iterations: u32) -> (f64, f64) {
    use fusion3d_multichip::moe::{Expert, MoeNerf, MoeTrainer};
    use fusion3d_nerf::adam::AdamConfig;
    use fusion3d_nerf::dataset::Dataset;
    use fusion3d_nerf::dense_grid::{DenseGrid, DenseGridConfig};
    use fusion3d_nerf::model::NerfModel;
    use fusion3d_nerf::occupancy::OccupancyGrid;
    use fusion3d_nerf::sampler::SamplerConfig;
    use fusion3d_nerf::scenes::ProceduralScene;
    use fusion3d_nerf::trainer::{Trainer, TrainerConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
    let dataset = Dataset::from_scene(&scene, 4, 20, 0.9);
    let config = TrainerConfig {
        rays_per_batch: 64,
        sampler: SamplerConfig { steps_per_diagonal: 40, max_samples_per_ray: 28 },
        occupancy_resolution: 14,
        occupancy_update_interval: 24,
        occupancy_warmup: 48,
        ..TrainerConfig::default()
    };

    // Single large dense grid: ~4x the parameters of one expert.
    let mut rng = SmallRng::seed_from_u64(21);
    let large = DenseGrid::with_random_init(
        DenseGridConfig { resolution: 25, features_per_vertex: 4 },
        &mut rng,
    );
    let mut single = Trainer::new(NerfModel::with_encoding(large, 16, 7, &mut rng), config);
    let mut step_rng = SmallRng::seed_from_u64(22);
    for _ in 0..iterations {
        single.step(&dataset, &mut step_rng);
    }
    let single_psnr = single.evaluate_psnr(&dataset);

    // MoE of four small dense experts, each scoped to one XZ quadrant
    // (with a margin) so its vertex budget concentrates there — how a
    // dense-grid MoE recovers the single model's resolution. The gates
    // are the quadrants; they are kept static (a dense expert has no
    // collision-driven self-pruning).
    let margin = 0.1f32;
    let mut rng = SmallRng::seed_from_u64(23);
    let experts = (0..4usize)
        .map(|q| {
            use fusion3d_nerf::math::{Aabb, Vec3};
            let (x0, z0) = ((q & 1) as f32 * 0.5, ((q >> 1) & 1) as f32 * 0.5);
            let domain = Aabb::new(
                Vec3::new((x0 - margin).max(0.0), 0.0, (z0 - margin).max(0.0)),
                Vec3::new((x0 + 0.5 + margin).min(1.0), 1.0, (z0 + 0.5 + margin).min(1.0)),
            );
            let grid = DenseGrid::with_random_init_in_domain(
                DenseGridConfig { resolution: 16, features_per_vertex: 4 },
                domain,
                &mut rng,
            );
            let mut model = NerfModel::with_encoding(grid, 16, 7, &mut rng);
            *model.density_mlp_mut().output_bias_mut(0) -= 4f32.ln();
            let mut occupancy = OccupancyGrid::new(config.occupancy_resolution, 0.5);
            for cell in 0..occupancy.cell_count() {
                let c = occupancy.cell_center(cell);
                occupancy.set_cell(cell, domain.contains(c));
            }
            Expert { model, occupancy }
        })
        .collect();
    // Static gates: disable occupancy refreshes for the dense MoE.
    let moe_config = TrainerConfig { occupancy_warmup: iterations + 1, ..config };
    let mut moe_trainer =
        MoeTrainer::new(MoeNerf::from_experts(experts), moe_config, AdamConfig::default());
    let mut step_rng = SmallRng::seed_from_u64(24);
    for _ in 0..iterations {
        moe_trainer.step(&dataset, &mut step_rng);
    }
    let moe_psnr = moe_trainer.evaluate_psnr(&dataset);
    (single_psnr, moe_psnr)
}

/// Prints the dense-grid (TensoRF-class) MoE comparison.
pub fn run_dense_moe() {
    let (single, moe) = dense_moe_comparison(220);
    println!(
        "\nMoE on a dense-grid (TensoRF-class) pipeline: single large model\n\
         {single:.2} dB vs 4-expert MoE {moe:.2} dB (d {:+.2} dB; paper: -0.5 dB\n\
         for 4 x 128^3 experts vs one 4x-larger model).",
        moe - single
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_moe_tracks_single_model() {
        // The TensoRF-transfer claim: a 4-expert dense-grid MoE lands
        // within ~1 dB of the single 4x-larger dense model (the paper
        // reports -0.5 dB at full scale).
        let (single, moe) = dense_moe_comparison(120);
        assert!(single.is_finite() && moe.is_finite());
        assert!(
            moe > single - 1.5,
            "dense MoE ({moe:.2} dB) strays too far from single ({single:.2} dB)"
        );
    }

    #[test]
    fn breakdown_speedups_in_paper_band() {
        let chip = FusionChip::scaled_up();
        let xnx = devices::jetson_xnx();
        let trace = scene_trace(SyntheticScene::Lego);
        let inf =
            chip.simulate_frame(&trace).points_per_second() / (xnx.inference_mpts.unwrap() * 1e6);
        let train = chip.simulate_training_step(&trace).points_per_second()
            / (xnx.training_mpts.unwrap() * 1e6);
        assert!((15.0..=80.0).contains(&inf), "inference speedup {inf}");
        assert!((30.0..=120.0).contains(&train), "training speedup {train}");
        // Training speedup exceeds inference speedup, as in the paper
        // (76x vs 47x) — GPUs are worse at the scattered updates.
        assert!(train > inf);
    }
}
