//! Fig. 9 (prototype spec and resource configuration) and Fig. 10
//! (area/power breakdowns, measured voltage–frequency curve).

use crate::support::print_table;
use fusion3d_core::config::{frequency_at_voltage_mhz, ChipConfig, Module};

/// Prints the Fig. 9(b)/(c) reproduction: the prototype spec table and
/// per-module resource configuration.
pub fn run_fig9() {
    let p = ChipConfig::prototype();
    print_table(
        "Fig. 9(b): prototype chip specification",
        &["Item", "Value"],
        &[
            vec!["Technology".into(), "28 nm CMOS".into()],
            vec!["Clock".into(), format!("{:.0} MHz", p.clock_mhz)],
            vec!["Core voltage".into(), format!("{:.2} V", p.core_voltage)],
            vec!["Typical power".into(), format!("{:.2} W", p.typical_power_w)],
            vec!["On-chip SRAM".into(), format!("{:.0} KB", p.total_sram_kb())],
            vec!["Rendering".into(), "36 FPS (measured)".into()],
            vec!["Training".into(), "1.8 s to 25 PSNR (measured)".into()],
        ],
    );
    print_table(
        "Fig. 9(c): module configuration (prototype vs scaled-up)",
        &["Module", "Prototype", "Scaled-up"],
        &[
            vec!["Sampling cores".into(), "16".into(), "16".into()],
            vec![
                "Feature interpolation cores".into(),
                p.interp_cores.to_string(),
                ChipConfig::scaled_up().interp_cores.to_string(),
            ],
            vec!["Post-processing modules".into(), "1".into(), "1".into()],
            vec![
                "Memory clusters".into(),
                p.memory_clusters.to_string(),
                ChipConfig::scaled_up().memory_clusters.to_string(),
            ],
            vec![
                "Die area (mm^2)".into(),
                format!("{:.1}", p.die_area_mm2),
                format!("{:.1}", ChipConfig::scaled_up().die_area_mm2),
            ],
        ],
    );
}

/// Prints the Fig. 10(c)/(d) reproduction: breakdowns and the V/F
/// curve.
pub fn run_fig10() {
    let p = ChipConfig::prototype();
    let body: Vec<Vec<String>> = Module::ALL
        .iter()
        .map(|&m| {
            vec![
                m.name().to_string(),
                format!(
                    "{:.2} ({:.0}%)",
                    p.module_area_mm2(m),
                    100.0 * p.module_area_mm2(m) / p.die_area_mm2
                ),
                format!(
                    "{:.3} ({:.0}%)",
                    p.module_power_w(m),
                    100.0 * p.module_power_w(m) / p.typical_power_w
                ),
            ]
        })
        .collect();
    print_table(
        "Fig. 10(c): area and power breakdown of the fabricated chip",
        &["Module", "Area mm^2", "Power W"],
        &body,
    );

    println!("\nFig. 10(d): measured voltage-frequency curve");
    println!("{:>8}  {:>10}", "V (V)", "f (MHz)");
    let mut v = 0.60;
    while v <= 1.101 {
        println!("{v:>8.2}  {:>10.0}", frequency_at_voltage_mhz(v));
        v += 0.05;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vf_curve_covers_measured_range() {
        // The curve spans the chip's measured operating window and
        // passes through the 600 MHz / 0.95 V silicon point.
        assert!(frequency_at_voltage_mhz(0.6) > 50.0);
        assert!(frequency_at_voltage_mhz(1.1) > 700.0);
        assert!((frequency_at_voltage_mhz(0.95) - 600.0).abs() < 1.0);
    }
}
