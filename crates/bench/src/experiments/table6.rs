//! Table VI: Stage-I ablation — speedup of Technique T1 (model
//! normalization & partitioning + dynamic workload scheduling) over
//! the naive sampling module, per scene.

use crate::support::{for_each_scene, print_table, scene_trace};
use fusion3d_core::sampling::t1_speedup;
use fusion3d_nerf::scenes::SyntheticScene;

/// Per-scene T1 speedup.
pub fn per_scene_speedups() -> Vec<(SyntheticScene, f64)> {
    for_each_scene(&SyntheticScene::ALL, |scene| (scene, t1_speedup(&scene_trace(scene).workloads)))
}

/// Prints the Table VI reproduction.
pub fn run() {
    let rows: Vec<Vec<String>> = per_scene_speedups()
        .into_iter()
        .map(|(scene, s)| vec![scene.name().to_string(), format!("{s:.1}x")])
        .collect();
    print_table(
        "Table VI: sampling-module (T1) ablation speedup per scene",
        &["Scene", "Speedup"],
        &rows,
    );
    println!(
        "\nPaper reference: 5.4x (ship, densest) to 20.2x (mic, sparsest); the\n\
         spread tracks scene sparsity because the naive module is bound by the\n\
         general ray-box solve while T1's residual cost is the marching work."
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn speedups_match_paper_shape() {
        let speedups: HashMap<&str, f64> =
            per_scene_speedups().into_iter().map(|(s, v)| (s.name(), v)).collect();
        // All scenes accelerate substantially.
        for (name, s) in &speedups {
            assert!((2.0..=64.0).contains(s), "{name}: T1 speedup {s} out of the physical band");
        }
        // The paper's extremes: mic (sparsest) gains the most, ship
        // (densest) the least.
        let mic = speedups["mic"];
        let ship = speedups["ship"];
        assert!(mic > ship, "mic {mic} should beat ship {ship}");
        let max = speedups.values().cloned().fold(0.0, f64::max);
        assert_eq!(max, mic, "mic has the largest speedup");
        // The spread is wide, as in Table VI (5.4x-20.2x).
        assert!(mic / ship > 1.6, "spread mic/ship = {}", mic / ship);
    }
}
