//! Fig. 14(b): the chiplet design's I/O-module area versus model size
//! at a fixed 0.6 GB/s off-package bandwidth.

use crate::support::print_table;
use fusion3d_multichip::chiplet::{sweep_model_sizes, IO_LOGIC_AREA_MM2};

/// The compute chips' aggregate parameter SRAM (4 chips × 640 KB).
pub const CHIPS_SRAM_KB: f64 = 4.0 * 640.0;

/// Prints the Fig. 14(b) reproduction.
pub fn run() {
    let log2_sizes = [14u32, 15, 16, 17, 18, 19, 20];
    let points = sweep_model_sizes(&log2_sizes, 10, 1, CHIPS_SRAM_KB); // F=2 at f16 = 1 f32-equivalent
    let body: Vec<Vec<String>> = log2_sizes
        .iter()
        .zip(&points)
        .map(|(l, p)| {
            vec![
                format!("2^{l}"),
                format!("{:.0}", p.model_kb),
                format!("{:.0}", p.buffer_kb),
                format!("{:.2}", p.io_area_mm2),
            ]
        })
        .collect();
    print_table(
        "Fig. 14(b): I/O-module area to hold 0.6 GB/s off-package bandwidth",
        &["Table size", "Model KB", "Buffer KB", "I/O area mm^2"],
        &body,
    );
    println!(
        "\nBase I/O logic: {IO_LOGIC_AREA_MM2} mm^2. Past the chips' {CHIPS_SRAM_KB:.0} KB\n\
         of parameter SRAM the buffer grows linearly with model size — the\n\
         area/bandwidth trade-off the paper flags for future work."
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_multichip::chiplet::sweep_model_sizes;

    #[test]
    fn io_area_explodes_with_model_size() {
        let points = sweep_model_sizes(&[14, 20], 10, 1, CHIPS_SRAM_KB);
        assert!(points[0].buffer_kb == 0.0);
        assert!(points[1].io_area_mm2 > 20.0 * points[0].io_area_mm2);
    }
}
