//! Fig. 11: per-scene normalized speedup and energy efficiency of the
//! single-chip accelerator against the baseline devices, over the
//! eight NeRF-Synthetic-class scenes.

use crate::support::{for_each_scene, print_table, scene_trace};
use fusion3d_baselines::devices::{self, DeviceSpec};
use fusion3d_core::chip::FusionChip;
use fusion3d_nerf::scenes::SyntheticScene;

/// Per-scene speedup and energy-efficiency ratios against one
/// baseline.
#[derive(Debug, Clone)]
pub struct SceneComparison {
    /// Scene name.
    pub scene: &'static str,
    /// Our sustained inference throughput (points/s).
    pub ours_pts: f64,
    /// Inference speedup vs the baseline.
    pub speedup: Option<f64>,
    /// Inference energy-efficiency gain vs the baseline.
    pub energy_gain: Option<f64>,
}

/// Compares the scaled-up chip against `baseline` on every scene.
pub fn compare_against(baseline: &DeviceSpec) -> Vec<SceneComparison> {
    let chip = FusionChip::scaled_up();
    for_each_scene(&SyntheticScene::ALL, |scene| {
        let trace = scene_trace(scene);
        let report = chip.simulate_frame(&trace);
        let ours_pts = report.points_per_second();
        let ours_nj = chip.config().typical_power_w / ours_pts * 1e9;
        SceneComparison {
            scene: scene.name(),
            ours_pts,
            speedup: baseline.inference_mpts.map(|m| ours_pts / (m * 1e6)),
            energy_gain: baseline.inference_nj_per_pt.map(|nj| nj / ours_nj),
        }
    })
}

/// Prints the Fig. 11 reproduction.
pub fn run() {
    let baselines = [
        devices::jetson_xnx(),
        devices::rtnerf_edge(),
        devices::neurex_edge(),
        devices::metavrain(),
    ];
    let mut body = Vec::new();
    for b in &baselines {
        for c in compare_against(b) {
            body.push(vec![
                b.name.to_string(),
                c.scene.to_string(),
                format!("{:.1}", c.ours_pts / 1e6),
                c.speedup.map_or("N/R".into(), |s| format!("{s:.1}x")),
                c.energy_gain.map_or("N/R".into(), |g| format!("{g:.1}x")),
            ]);
        }
    }
    print_table(
        "Fig. 11: per-scene normalized speedup / energy efficiency (inference)",
        &["Baseline", "Scene", "Ours M/s", "Speedup", "Energy eff."],
        &body,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_every_baseline_on_every_scene() {
        for baseline in [devices::jetson_xnx(), devices::rtnerf_edge(), devices::neurex_edge()] {
            for c in compare_against(&baseline) {
                if let Some(s) = c.speedup {
                    assert!(s > 1.0, "{} on {}: speedup {s}", baseline.name, c.scene);
                }
                if let Some(g) = c.energy_gain {
                    assert!(g > 1.0, "{} on {}: gain {g}", baseline.name, c.scene);
                }
            }
        }
    }

    #[test]
    fn speedup_vs_xnx_is_order_tens() {
        // The paper's breakdown quotes ~47x inference speedup vs the
        // Jetson XNX; the per-scene normalized numbers land in the
        // tens.
        let comps = compare_against(&devices::jetson_xnx());
        let mean: f64 = comps.iter().filter_map(|c| c.speedup).sum::<f64>() / comps.len() as f64;
        assert!((15.0..=60.0).contains(&mean), "mean XNX speedup {mean}");
    }
}
