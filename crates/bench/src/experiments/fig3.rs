//! Fig. 3: per-stage data volumes of NeRF training, and the design
//! boundaries prior accelerators draw through them.
//!
//! The paper measures ~155 GB of intermediate data (12.5 GB/s of
//! inter-stage plus 77.5 GB/s of intra-stage traffic over a 2-second
//! training run) against only ~700 MB of true end-to-end I/O. We
//! project the same quantities from the trainer's byte-exact ledger,
//! scaled to the paper-scale model and batch schedule.

use crate::support::print_table;
use fusion3d_core::bandwidth::{required_bandwidth_gbs, DesignBoundary, USB_BANDWIDTH_GBS};
use fusion3d_nerf::encoding::HashGridConfig;
use fusion3d_nerf::model::ModelConfig;
use fusion3d_nerf::trainer::{estimate_step_volume, DataVolume};

/// The paper-scale Instant-NGP configuration: 10 levels × 2 features
/// at 2^15 entries (the chip's 2 × 5 × 64 KB hash SRAM), 64-wide MLPs.
pub fn paper_model() -> ModelConfig {
    ModelConfig {
        grid: HashGridConfig {
            levels: 10,
            features_per_level: 2,
            log2_table_size: 15,
            base_resolution: 16,
            max_resolution: 2048,
        },
        hidden_dim: 64,
        geo_feature_dim: 15,
    }
}

/// The paper-scale training schedule reaching 25 PSNR in 2 s on the
/// scaled-up chip: 199 M points/s × 2 s of samples over ~2000 batches.
pub fn paper_training_volume() -> DataVolume {
    let model = paper_model();
    let total_samples: u64 = 398_000_000; // 199 M pts/s × 2 s
    let iterations = 2000u64;
    let samples_per_iter = total_samples / iterations;
    let rays_per_iter = samples_per_iter / 13; // ~13 samples per ray
    let mut volume = DataVolume::default();
    for _ in 0..iterations {
        volume = volume + estimate_step_volume(&model, rays_per_iter, samples_per_iter);
    }
    // End-to-end I/O: ~100 training images at 800x800 RGB f32 in,
    // trained parameters out.
    volume.end_to_end_io = 100 * 800 * 800 * 12 + model.param_count() as u64 * 4;
    volume
}

/// Prints the Fig. 3 reproduction.
pub fn run() {
    let v = paper_training_volume();
    let gb = |b: u64| b as f64 / 1e9;
    print_table(
        "Fig. 3: data volume per stage for a 2-second training run",
        &["Flow", "Volume (GB)", "BW for 2 s (GB/s)"],
        &[
            vec![
                "Stage I -> II hand-off".into(),
                format!("{:.1}", gb(v.stage1_to_stage2)),
                format!("{:.1}", required_bandwidth_gbs(v.stage1_to_stage2, 2.0)),
            ],
            vec![
                "Stage II internal".into(),
                format!("{:.1}", gb(v.stage2_internal)),
                format!("{:.1}", required_bandwidth_gbs(v.stage2_internal, 2.0)),
            ],
            vec![
                "Stage II -> III hand-off".into(),
                format!("{:.1}", gb(v.stage2_to_stage3)),
                format!("{:.1}", required_bandwidth_gbs(v.stage2_to_stage3, 2.0)),
            ],
            vec![
                "Stage III internal".into(),
                format!("{:.1}", gb(v.stage3_internal)),
                format!("{:.1}", required_bandwidth_gbs(v.stage3_internal, 2.0)),
            ],
            vec![
                "Total intermediate".into(),
                format!("{:.1}", gb(v.total_intermediate())),
                format!("{:.1}", required_bandwidth_gbs(v.total_intermediate(), 2.0)),
            ],
            vec![
                "End-to-end I/O (ours)".into(),
                format!("{:.2}", gb(v.end_to_end_io)),
                format!("{:.3}", required_bandwidth_gbs(v.end_to_end_io, 2.0)),
            ],
        ],
    );

    println!("\nDesign boundaries (off-chip traffic for a 2 s training run):");
    for b in DesignBoundary::ALL {
        let bytes = b.offchip_bytes(&v);
        let bw = required_bandwidth_gbs(bytes, 2.0);
        let fits = if bw <= USB_BANDWIDTH_GBS { "fits USB" } else { "exceeds USB" };
        println!("  {:<24} {:>8.2} GB/s  ({fits})", b.label(), bw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volumes_match_fig3_shape() {
        let v = paper_training_volume();
        // Intermediate data in the 100-200 GB band the paper reports.
        let total_gb = v.total_intermediate() as f64 / 1e9;
        assert!((80.0..=250.0).contains(&total_gb), "total {total_gb} GB");
        // End-to-end I/O under 1 GB (the paper: ~700 MB).
        let e2e_gb = v.end_to_end_io as f64 / 1e9;
        assert!((0.3..=1.0).contains(&e2e_gb), "end-to-end {e2e_gb} GB");
        // The end-to-end boundary fits the USB budget; all others
        // exceed it.
        let e2e_bw = required_bandwidth_gbs(DesignBoundary::EndToEnd.offchip_bytes(&v), 2.0);
        assert!(e2e_bw < USB_BANDWIDTH_GBS);
        for b in [DesignBoundary::Stage2, DesignBoundary::Stages23, DesignBoundary::Stages12] {
            let bw = required_bandwidth_gbs(b.offchip_bytes(&v), 2.0);
            assert!(bw > USB_BANDWIDTH_GBS, "{} only needs {bw}", b.label());
        }
    }
}
