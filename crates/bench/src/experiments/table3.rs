//! Table III: the scaled-up single-chip accelerator versus six
//! baselines (edge GPUs and prior NeRF accelerators).
//!
//! Our columns come from the cycle-level simulator replaying the eight
//! NeRF-Synthetic-class scene traces; baseline columns are the
//! published numbers in `fusion3d-baselines`.

use crate::support::{for_each_scene, opt, print_table, scene_trace, yn};
use fusion3d_baselines::devices;
use fusion3d_core::chip::FusionChip;
use fusion3d_nerf::scenes::SyntheticScene;

/// Our simulated single-chip summary over the eight scenes.
#[derive(Debug, Clone, Copy)]
pub struct SingleChipSummary {
    /// Sustained inference throughput, million points per second.
    pub inference_mpts: f64,
    /// Sustained training throughput, million points per second.
    pub training_mpts: f64,
    /// Inference energy per point, nJ.
    pub inference_nj: f64,
    /// Training energy per point, nJ.
    pub training_nj: f64,
}

/// Simulates the scaled-up chip over all eight scenes and averages the
/// sustained throughputs.
pub fn simulate_single_chip() -> SingleChipSummary {
    let chip = FusionChip::scaled_up();
    let per_scene = for_each_scene(&SyntheticScene::ALL, |scene| {
        let trace = scene_trace(scene);
        (
            chip.simulate_frame(&trace).points_per_second(),
            chip.simulate_training_step(&trace).points_per_second(),
        )
    });
    let inf = per_scene.iter().map(|&(i, _)| i).sum::<f64>() / SyntheticScene::ALL.len() as f64;
    let train = per_scene.iter().map(|&(_, t)| t).sum::<f64>() / SyntheticScene::ALL.len() as f64;
    let power = chip.config().typical_power_w;
    SingleChipSummary {
        inference_mpts: inf / 1e6,
        training_mpts: train / 1e6,
        inference_nj: power / inf * 1e9,
        training_nj: power / train * 1e9,
    }
}

/// Prints the Table III reproduction.
pub fn run() {
    let ours = simulate_single_chip();
    let chip = FusionChip::scaled_up();
    let cfg = chip.config();

    let mut body = Vec::new();
    for d in devices::table3_baselines() {
        body.push(vec![
            d.name.to_string(),
            yn(d.silicon_prototype),
            format!("{} nm", d.process_nm),
            format!("{:.2}", d.die_area_mm2),
            format!("{:.0}", d.clock_mhz),
            format!("{:.0}", d.sram_kb),
            yn(d.instant_training),
            yn(d.realtime_inference),
            yn(d.end_to_end),
            opt(d.inference_mpts, 1),
            opt(d.training_mpts, 1),
            opt(d.inference_nj_per_pt, 1),
            opt(d.training_nj_per_pt, 1),
            opt(d.offchip_bandwidth_gbs, 1),
        ]);
    }
    body.push(vec![
        "This Work".to_string(),
        "Yes".to_string(),
        "28 nm".to_string(),
        format!("{:.2}", cfg.die_area_mm2),
        format!("{:.0}", cfg.clock_mhz),
        format!("{:.0}", cfg.total_sram_kb()),
        "Yes".to_string(),
        "Yes".to_string(),
        "Yes".to_string(),
        format!("{:.1}", ours.inference_mpts),
        format!("{:.1}", ours.training_mpts),
        format!("{:.1}", ours.inference_nj),
        format!("{:.1}", ours.training_nj),
        "0.6".to_string(),
    ]);
    print_table(
        "Table III: single-chip accelerator vs. SOTA NeRF accelerators",
        &[
            "Device", "Silicon", "Process", "Area", "MHz", "SRAM KB", "Instant", "RT-Inf", "E2E",
            "Inf M/s", "Trn M/s", "Inf nJ", "Trn nJ", "BW GB/s",
        ],
        &body,
    );

    // Headline ratios.
    let best_inf =
        devices::table3_baselines().iter().filter_map(|d| d.inference_mpts).fold(0.0f64, f64::max);
    let best_train =
        devices::table3_baselines().iter().filter_map(|d| d.training_mpts).fold(0.0f64, f64::max);
    let best_inf_nj = devices::table3_baselines()
        .iter()
        .filter_map(|d| d.inference_nj_per_pt)
        .fold(f64::INFINITY, f64::min);
    let best_train_nj = devices::table3_baselines()
        .iter()
        .filter_map(|d| d.training_nj_per_pt)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nInference: {:.2}x throughput and {:.1}x energy efficiency vs best baseline",
        ours.inference_mpts / best_inf,
        best_inf_nj / ours.inference_nj
    );
    println!(
        "Training:  {:.2}x throughput and {:.1}x energy efficiency vs best baseline",
        ours.training_mpts / best_train,
        best_train_nj / ours.training_nj
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_chip_matches_table_iii_shape() {
        let s = simulate_single_chip();
        // Sustained inference in the hundreds of M pts/s; the paper
        // reports 591 on its testbed.
        assert!((300.0..=650.0).contains(&s.inference_mpts), "inference {} M/s", s.inference_mpts);
        // Training about one third of inference (the 3-cycle RMW).
        let ratio = s.inference_mpts / s.training_mpts;
        assert!((2.0..=4.0).contains(&ratio), "train ratio {ratio}");
        // Who-wins orderings from the paper's comparison hold.
        let best_baseline_inf = 288.0; // RT-NeRF
        let best_baseline_train = 32.0; // Instant-3D
        assert!(s.inference_mpts > best_baseline_inf);
        assert!(s.training_mpts > 4.0 * best_baseline_train);
        // Energy per point in the single-digit nJ regime (paper: 2.5 /
        // 7.4 nJ) — an order of magnitude under the best baseline.
        assert!(s.inference_nj < 27.0 / 3.0, "inference {} nJ", s.inference_nj);
        assert!(s.training_nj < 59.0 / 3.0, "training {} nJ", s.training_nj);
    }
}
