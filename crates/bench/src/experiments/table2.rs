//! Table II: rendering quality of INT8-quantized training at
//! different quantization frequencies.
//!
//! The paper trains Instant-NGP for 5000 iterations and quantizes all
//! weights every N iterations: never / 1000 / 200 / every iteration,
//! observing 31.7 / 30.1 / 26.0 / not-convergent PSNR. We run the same
//! protocol at reduced scale (the schedule periods scale with the
//! iteration budget) and report the same monotone degradation.

use crate::support::print_table;
use fusion3d_nerf::dataset::Dataset;
use fusion3d_nerf::encoding::HashGridConfig;
use fusion3d_nerf::model::{ModelConfig, NerfModel};
use fusion3d_nerf::quant::{train_with_quantization, QuantSchedule};
use fusion3d_nerf::sampler::SamplerConfig;
use fusion3d_nerf::scenes::{ProceduralScene, SyntheticScene};
use fusion3d_nerf::trainer::TrainerConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Iteration budget of the reduced-scale runs (the paper uses 5000).
pub const ITERATIONS: u32 = 240;

/// The schedules, scaled from the paper's {never, 1000, 200, 1} at
/// 5000 iterations to the reduced budget.
pub fn schedules() -> [QuantSchedule; 4] {
    [
        QuantSchedule::Never,
        QuantSchedule::Every(ITERATIONS / 5), // paper: 1000/5000
        QuantSchedule::Every(ITERATIONS / 25), // paper: 200/5000
        QuantSchedule::Every(1),
    ]
}

fn bench_model(rng: &mut SmallRng) -> NerfModel {
    NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 4,
                features_per_level: 2,
                log2_table_size: 11,
                base_resolution: 4,
                max_resolution: 32,
            },
            hidden_dim: 16,
            geo_feature_dim: 7,
        },
        rng,
    )
}

fn bench_trainer_config() -> TrainerConfig {
    TrainerConfig {
        rays_per_batch: 96,
        sampler: SamplerConfig { steps_per_diagonal: 48, max_samples_per_ray: 32 },
        occupancy_resolution: 16,
        occupancy_update_interval: 24,
        occupancy_warmup: 48,
        ..TrainerConfig::default()
    }
}

/// One Table II row: PSNR per schedule, averaged over the scenes.
pub fn measure(scenes: &[SyntheticScene]) -> Vec<(QuantSchedule, f64, bool)> {
    let mut results = Vec::new();
    for schedule in schedules() {
        let mut psnr_sum = 0.0;
        let mut any_diverged = false;
        for (i, &scene) in scenes.iter().enumerate() {
            let dataset = Dataset::from_scene(&ProceduralScene::synthetic(scene), 5, 20, 0.9);
            let mut rng = SmallRng::seed_from_u64(42 + i as u64);
            let model = bench_model(&mut rng);
            let mut train_rng = SmallRng::seed_from_u64(7);
            let r = train_with_quantization(
                model,
                &dataset,
                bench_trainer_config(),
                schedule,
                ITERATIONS,
                &mut train_rng,
            );
            any_diverged |= r.diverged;
            if r.psnr.is_finite() {
                psnr_sum += r.psnr;
            }
        }
        results.push((schedule, psnr_sum / scenes.len() as f64, any_diverged));
    }
    results
}

/// Prints the Table II reproduction.
pub fn run() {
    let scenes = [SyntheticScene::Hotdog, SyntheticScene::Lego, SyntheticScene::Chair];
    let rows: Vec<Vec<String>> = measure(&scenes)
        .into_iter()
        .map(|(schedule, psnr, diverged)| {
            vec![
                schedule.label(),
                if diverged {
                    "degraded / not convergent".to_string()
                } else {
                    format!("{psnr:.1}")
                },
            ]
        })
        .collect();
    print_table(
        "Table II: PSNR with INT8-quantized training (reduced-scale protocol)",
        &["Quantization frequency", "PSNR (dB)"],
        &rows,
    );
    println!(
        "\nPaper reference at full scale: Never 31.7, 1000-iter 30.1 (-1.6),\n\
         200-iter 26.0 (-5.7), every-iteration not convergent — the same\n\
         monotone degradation with quantization frequency."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_frequency_degrades_quality_monotonically() {
        // One scene keeps the test quick; the monotone shape is what
        // Table II claims.
        let results = measure(&[SyntheticScene::Hotdog]);
        let never = results[0].1;
        let rare = results[1].1;
        let frequent = results[2].1;
        let every = results[3].1;
        assert!(never.is_finite() && never > 10.0, "baseline PSNR {never}");
        assert!(rare <= never + 0.3, "rare quantization should not beat float: {rare} vs {never}");
        assert!(
            every <= never - 0.5 || results[3].2,
            "per-iteration quantization must hurt: {every} vs {never}"
        );
        // The most frequent schedules sit at or below the rare one.
        assert!(every <= rare + 0.3, "every {every} vs rare {rare}");
        let _ = frequent;
    }
}
