//! Table I: off-chip bandwidth of prior accelerators versus the
//! bandwidth edge platforms actually provide.

use crate::support::{opt, print_table, yn};
use fusion3d_baselines::devices;

/// Prints the Table I reproduction.
pub fn run() {
    let mut body: Vec<Vec<String>> = Vec::new();
    for d in devices::table1_accelerators() {
        body.push(vec![
            d.name.to_string(),
            yn(d.instant_training),
            d.offchip_connection.to_string(),
            opt(d.offchip_bandwidth_gbs, 1),
        ]);
    }
    for p in devices::edge_platforms() {
        body.push(vec![
            p.name.to_string(),
            "-".to_string(),
            p.connection.to_string(),
            format!("{:.3}", p.bandwidth_gbs),
        ]);
    }
    body.push(vec![
        "This Work".to_string(),
        "Yes (Instant)".to_string(),
        "USB 3.2 Gen 1".to_string(),
        "0.600".to_string(),
    ]);
    print_table(
        "Table I: off-chip bandwidth requirements vs. edge availability",
        &["Platform", "Training", "Connection", "BW (GB/s)"],
        &body,
    );
    let usb = devices::edge_platforms()[0].bandwidth_gbs;
    let worst = devices::table1_accelerators()
        .iter()
        .filter_map(|d| d.offchip_bandwidth_gbs)
        .fold(0.0f64, f64::max);
    println!(
        "\nEvery prior accelerator exceeds the {usb} GB/s USB budget \
         (worst case {worst} GB/s = {:.0}x over); this work fits with margin.",
        worst / usb
    );
}
