//! Fig. 12: ablations of the multi-chip techniques — (a) Level-1 MoE
//! communication saving, (b) interconnect area saving, (c) feature
//! access latency saving, (d) latency variance, and (e) the memory
//! access pattern under naive banking versus two-level tiling.

use crate::support::{large_scene_trace, print_table};
use fusion3d_mem::banks::{simulate_groups, BankMapping, VertexRequest, BANKS};
use fusion3d_mem::interconnect::{
    compare as compare_interconnect, STAGE2_PORTS, STAGE2_WIDTH_BITS,
};
use fusion3d_multichip::comm::{moe_communication_saving, FrameWorkload};
use fusion3d_nerf::encoding::{HashGrid, HashGridConfig};
use fusion3d_nerf::math::Vec3;
use fusion3d_nerf::scenes::LargeScene;

/// Builds the per-point eight-corner request groups of a set of query
/// points on every level of a hash grid.
pub fn request_groups(points: usize) -> Vec<[VertexRequest; 8]> {
    let grid = HashGrid::new(HashGridConfig {
        levels: 10,
        features_per_level: 2,
        log2_table_size: 14,
        base_resolution: 16,
        max_resolution: 1024,
        // High-resolution hashed levels exercise the spatial hash.
    });
    let mut groups = Vec::new();
    let mut trace = Vec::new();
    // A deterministic low-discrepancy point set.
    for i in 0..points {
        let f = i as f32;
        let p =
            Vec3::new((f * 0.754877_7).fract(), (f * 0.569840_4).fract(), (f * 0.402914_6).fract());
        trace.clear();
        grid.record_accesses(p, &mut trace);
        for level in trace.chunks(8) {
            let mut group = [VertexRequest { corner: 0, address: 0 }; 8];
            for (g, a) in group.iter_mut().zip(level) {
                *g = VertexRequest { corner: a.corner, address: a.address };
            }
            groups.push(group);
        }
    }
    groups
}

/// Prints the Fig. 12 reproduction.
pub fn run() {
    // (a) Communication saving from Level-1 MoE tiling, on a real
    // large-scene workload.
    let trace = large_scene_trace(LargeScene::Room);
    let saving = moe_communication_saving(
        &FrameWorkload {
            rays: trace.ray_count() as u64,
            samples: trace.total_samples,
            feature_dim: 20,
            training: true,
        },
        4,
    );
    println!("\nFig. 12(a): chip-to-chip communication saving with Level-1 (MoE) tiling");
    println!("  saving = {:.1}% (paper: ~94%)", saving * 100.0);

    // (b, c fixed part) Interconnect comparison.
    let ic = compare_interconnect(STAGE2_PORTS, STAGE2_WIDTH_BITS);
    println!("\nFig. 12(b): interconnect area saving with Level-2/3 tiling");
    println!(
        "  crossbar {:.0} units -> one-to-one {:.0} units: {:.1}% saving",
        ic.crossbar.area,
        ic.one_to_one.area,
        ic.area_saving * 100.0
    );

    // (c, d, e) Bank-conflict simulation on real hash access groups.
    let groups = request_groups(4000);
    let refs: Vec<&[VertexRequest]> = groups.iter().map(|g| g.as_slice()).collect();
    let naive = simulate_groups(BankMapping::LowOrderBits, refs.iter().copied());
    let tiled = simulate_groups(BankMapping::TwoLevelTiling, refs.iter().copied());
    println!("\nFig. 12(c): feature access latency");
    println!(
        "  naive banking: {:.2} cycles/group (min {}, max {})",
        naive.mean_cycles(),
        naive.min_cycles,
        naive.max_cycles
    );
    println!(
        "  two-level tiling: {:.2} cycles/group -> {:.1}% latency saving (+1 cycle/pass from the removed crossbar)",
        tiled.mean_cycles(),
        tiled.latency_saving_vs(&naive) * 100.0
    );
    println!("\nFig. 12(d): feature-fetch latency variance");
    println!("  naive banking: {:.3}   two-level tiling: {:.3}", naive.variance, tiled.variance);
    println!("  latency histogram (groups served in 1..8 cycles):");
    println!("    naive: {:?}", naive.histogram);
    println!("    tiled: {:?}", tiled.histogram);

    // System-level effect of T4: untiled chips run slower and out of
    // lock step.
    {
        use fusion3d_multichip::system::{MultiChipConfig, MultiChipSystem};
        let wl = crate::experiments::table4_table5::per_chip_workloads(LargeScene::Room, 4);
        let tiled = MultiChipSystem::fusion3d().simulate(&wl, false);
        // Per-chip conflict factors measured from independent hash
        // access streams (each chip's own tables and samples).
        let factors: Vec<f64> = (0..4u64)
            .map(|c| {
                let gs = request_groups(1000 + 137 * c as usize);
                let refs: Vec<&[VertexRequest]> = gs.iter().map(|g| g.as_slice()).collect();
                simulate_groups(BankMapping::LowOrderBits, refs.iter().copied()).mean_cycles()
            })
            .collect();
        let naive =
            MultiChipSystem::with_per_chip_gather_cycles(MultiChipConfig::fusion3d(), &factors)
                .simulate(&wl, false);
        println!(
            "\nSystem-level T4 effect (4 chips, Room scene): tiled imbalance {:.2},\n  naive banking imbalance {:.2} and {:.2}x slower end-to-end",
            tiled.imbalance(),
            naive.imbalance(),
            naive.total_seconds / tiled.total_seconds
        );
    }

    // (e) Access pattern: per-bank request counts of a few groups.
    println!("\nFig. 12(e): per-bank requests of four sample groups (8 corners each)");
    let mut body = Vec::new();
    for (i, g) in groups.iter().take(4).enumerate() {
        for (label, mapping) in
            [("naive", BankMapping::LowOrderBits), ("tiled", BankMapping::TwoLevelTiling)]
        {
            let mut per_bank = [0u32; BANKS];
            for &req in g.iter() {
                per_bank[mapping.bank_of(req)] += 1;
            }
            body.push(vec![
                format!("group {i} ({label})"),
                per_bank.map(|c| c.to_string()).join(" "),
            ]);
        }
    }
    print_table("access pattern", &["Group", "Requests per bank 0..7"], &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_is_conflict_free_on_real_hash_accesses() {
        let groups = request_groups(2000);
        let refs: Vec<&[VertexRequest]> = groups.iter().map(|g| g.as_slice()).collect();
        let tiled = simulate_groups(BankMapping::TwoLevelTiling, refs.iter().copied());
        assert_eq!(tiled.conflict_cycles, 0, "two-level tiling must be conflict-free");
        assert_eq!(tiled.variance, 0.0, "Fig. 12(d): variance becomes zero");
        let naive = simulate_groups(BankMapping::LowOrderBits, refs.iter().copied());
        assert!(naive.conflict_cycles > 0, "naive banking must conflict somewhere");
        assert!(naive.variance > 0.0);
        assert!(tiled.latency_saving_vs(&naive) > 0.05);
    }

    #[test]
    fn moe_saving_holds_on_real_trace() {
        let trace = large_scene_trace(LargeScene::Room);
        let saving = moe_communication_saving(
            &FrameWorkload {
                rays: trace.ray_count() as u64,
                samples: trace.total_samples,
                feature_dim: 20,
                training: true,
            },
            4,
        );
        assert!((0.85..=0.999).contains(&saving), "saving {saving}");
    }
}
