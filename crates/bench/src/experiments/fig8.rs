//! Fig. 8: visualization of the MoE-based multi-chip design — which
//! expert dominates each pixel after training.
//!
//! The paper renders region colors per expert; here a short MoE
//! training run is followed by an ASCII dominance map: each foreground
//! pixel is labeled with the index of the expert whose own field
//! absorbs the ray the most ('.' where the background dominates). The
//! visible structure — contiguous regions owned by single experts with
//! shared boundaries — is the specialization the Level-1 tiling relies
//! on. At reproduction scale the regional structure is seeded through
//! the gates (`MoeNerf::with_partitioned_gates`); training maintains
//! and refines it.

use fusion3d_multichip::moe::{MoeNerf, MoeTrainer};
use fusion3d_nerf::adam::AdamConfig;
use fusion3d_nerf::camera::Camera;
use fusion3d_nerf::dataset::Dataset;
use fusion3d_nerf::encoding::HashGridConfig;
use fusion3d_nerf::math::Vec3;
use fusion3d_nerf::model::ModelConfig;
use fusion3d_nerf::render::{composite, ShadedSample};
use fusion3d_nerf::sampler::{sample_ray, SamplerConfig};
use fusion3d_nerf::scenes::{LargeScene, ProceduralScene};
use fusion3d_nerf::trainer::TrainerConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Renders the per-pixel dominant-expert map of a trained MoE.
pub fn dominance_map(
    moe: &MoeNerf,
    camera: &Camera,
    sampler: &SamplerConfig,
) -> Vec<Option<usize>> {
    let mut ctx = fusion3d_nerf::model::PointContext::new();
    camera
        .rays()
        .map(|(_, _, ray)| {
            // Dominance by per-expert opacity (1 - transmittance):
            // the expert whose own field absorbs the ray the most owns
            // the pixel, regardless of its color brightness.
            let mut best: Option<(usize, f32)> = None;
            let mut total_opacity = 0.0f32;
            for (e, expert) in moe.experts().iter().enumerate() {
                let (samples, _) = sample_ray(&ray, &expert.occupancy, sampler);
                let shaded: Vec<ShadedSample> = samples
                    .iter()
                    .map(|s| {
                        let eval = expert.model.forward(s.position, ray.direction, &mut ctx);
                        ShadedSample { sigma: eval.sigma, color: eval.color, dt: s.dt }
                    })
                    .collect();
                let out = composite(&shaded, Vec3::ZERO, false);
                let opacity = 1.0 - out.final_transmittance;
                total_opacity += opacity;
                if best.is_none_or(|(_, b)| opacity > b) {
                    best = Some((e, opacity));
                }
            }
            // Background-dominated pixels absorb almost nothing.
            match best {
                Some((e, o)) if o > 0.2 && total_opacity > 0.3 => Some(e),
                _ => None,
            }
        })
        .collect()
}

/// Trains a 4-expert MoE on the Room scene and prints the dominance
/// map.
pub fn run() {
    let scene = ProceduralScene::large(LargeScene::Room);
    let dataset = Dataset::from_scene(&scene, 5, 24, 0.9);
    let config = TrainerConfig {
        rays_per_batch: 64,
        sampler: SamplerConfig { steps_per_diagonal: 40, max_samples_per_ray: 28 },
        occupancy_resolution: 16,
        occupancy_update_interval: 24,
        occupancy_warmup: 60,
        background: Vec3::new(0.55, 0.7, 0.9),
        ..TrainerConfig::default()
    };
    let model_cfg = ModelConfig {
        grid: HashGridConfig {
            levels: 4,
            features_per_level: 2,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 32,
        },
        hidden_dim: 16,
        geo_feature_dim: 7,
    };
    let mut rng = SmallRng::seed_from_u64(2);
    let moe =
        MoeNerf::with_partitioned_gates(4, model_cfg, 16, config.occupancy_threshold, &mut rng);
    let mut trainer = MoeTrainer::new(moe, config, AdamConfig::default());
    for _ in 0..300 {
        trainer.step(&dataset, &mut rng);
    }
    let moe = trainer.into_moe();

    let camera = dataset.views()[0].camera;
    let map = dominance_map(&moe, &camera, &config.sampler);
    println!("\n=== Fig. 8: per-pixel dominant expert (Room scene, 4 experts) ===");
    let w = camera.width() as usize;
    for row in map.chunks(w) {
        let line: String = row
            .iter()
            .map(|d| match d {
                Some(e) => char::from_digit(*e as u32, 10).unwrap_or('?'),
                None => '.',
            })
            .collect();
        println!("  {line}");
    }
    // Share of foreground pixels per expert.
    let mut counts = [0usize; 4];
    let mut fg = 0usize;
    for e in map.iter().flatten() {
        counts[*e] += 1;
        fg += 1;
    }
    if fg > 0 {
        println!("\nForeground share per expert:");
        for (e, c) in counts.iter().enumerate() {
            println!("  expert {e}: {:.0}%", 100.0 * *c as f64 / fg as f64);
        }
    }
    println!(
        "\nPaper reference: different experts automatically dominate different\n\
         regions, with some regions shared by two experts."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_map_has_frame_shape() {
        // An untrained MoE still produces a map of the right shape;
        // with symmetric random init no expert should own everything.
        let mut rng = SmallRng::seed_from_u64(1);
        let moe = MoeNerf::new(
            3,
            ModelConfig {
                grid: HashGridConfig {
                    levels: 2,
                    features_per_level: 2,
                    log2_table_size: 8,
                    base_resolution: 4,
                    max_resolution: 8,
                },
                hidden_dim: 8,
                geo_feature_dim: 3,
            },
            8,
            0.5,
            &mut rng,
        );
        let pose = fusion3d_nerf::camera::orbit_poses(Vec3::splat(0.5), 1.2, 1)[0];
        let camera = Camera::new(pose, 12, 12, 0.9);
        let sampler = SamplerConfig { steps_per_diagonal: 32, max_samples_per_ray: 16 };
        let map = dominance_map(&moe, &camera, &sampler);
        assert_eq!(map.len(), 144);
        for d in map.iter().flatten() {
            assert!(*d < 3);
        }
    }
}
