//! Chip-count scaling: the multi-chip system "flexibly adapts to
//! varying numbers of chips" (Sec. V-A, Fig. 8 top row), and the
//! convergent PSNR improves with the number of experts (Fig. 13(a)).

use crate::support::{
    large_scene_occupancy, partition_occupancy, print_table, trace_camera, trace_sampler, TRACE_RES,
};
use fusion3d_multichip::moe::{MoeNerf, MoeTrainer};
use fusion3d_multichip::system::{MultiChipConfig, MultiChipSystem};
use fusion3d_nerf::adam::AdamConfig;
use fusion3d_nerf::dataset::Dataset;
use fusion3d_nerf::encoding::HashGridConfig;
use fusion3d_nerf::model::ModelConfig;
use fusion3d_nerf::sampler::sample_ray;
use fusion3d_nerf::scenes::{LargeScene, ProceduralScene};
use fusion3d_nerf::trainer::TrainerConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Resource and performance envelope of an `n`-chip system on a large
/// scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Compute chips.
    pub chips: usize,
    /// Total area in mm².
    pub area_mm2: f64,
    /// Total power in watts.
    pub power_w: f64,
    /// Total model capacity in KB (per-chip hash SRAM × chips).
    pub capacity_kb: f64,
    /// System frame time on the probe scene, seconds.
    pub frame_seconds: f64,
}

/// Sweeps the system across chip counts on one large scene.
pub fn sweep_chips(scene: LargeScene, counts: &[usize]) -> Vec<ScalePoint> {
    let full = large_scene_occupancy(scene);
    let camera = trace_camera(TRACE_RES);
    let sampler = trace_sampler();
    counts
        .iter()
        .map(|&n| {
            let config = MultiChipConfig { chips: n, ..MultiChipConfig::fusion3d() };
            let system = MultiChipSystem::new(config.clone());
            let gates = partition_occupancy(&full, n);
            let per_chip: Vec<Vec<fusion3d_nerf::sampler::RayWorkload>> = gates
                .iter()
                .map(|g| camera.rays().map(|(_, _, ray)| sample_ray(&ray, g, &sampler).1).collect())
                .collect();
            let report = system.simulate(&per_chip, false);
            ScalePoint {
                chips: n,
                area_mm2: config.total_area_mm2(),
                power_w: config.total_power_w(),
                capacity_kb: 640.0 * n as f64,
                frame_seconds: report.total_seconds,
            }
        })
        .collect()
}

/// Trains MoEs of 1, 2, and 4 experts (same per-expert size) on the
/// Room scene, returning `(experts, psnr)` — the Fig. 13(a) claim that
/// more experts converge to a higher PSNR.
pub fn psnr_vs_expert_count(iterations: u32) -> Vec<(usize, f64)> {
    let scene = ProceduralScene::large(LargeScene::Room);
    let dataset = Dataset::from_scene(&scene, 5, 20, 0.9);
    let config = TrainerConfig {
        rays_per_batch: 64,
        sampler: fusion3d_nerf::sampler::SamplerConfig {
            steps_per_diagonal: 40,
            max_samples_per_ray: 28,
        },
        occupancy_resolution: 16,
        occupancy_update_interval: 24,
        occupancy_warmup: 60,
        background: fusion3d_nerf::math::Vec3::new(0.55, 0.7, 0.9),
        ..TrainerConfig::default()
    };
    let per_expert = ModelConfig {
        grid: HashGridConfig {
            levels: 4,
            features_per_level: 2,
            log2_table_size: 9,
            base_resolution: 4,
            max_resolution: 32,
        },
        hidden_dim: 16,
        geo_feature_dim: 7,
    };
    [1usize, 2, 4]
        .iter()
        .map(|&n| {
            let mut rng = SmallRng::seed_from_u64(50 + n as u64);
            let moe = if n == 1 {
                MoeNerf::new(1, per_expert, 16, config.occupancy_threshold, &mut rng)
            } else {
                MoeNerf::with_partitioned_gates(
                    n,
                    per_expert,
                    16,
                    config.occupancy_threshold,
                    &mut rng,
                )
            };
            let mut trainer = MoeTrainer::new(moe, config, AdamConfig::default());
            let mut step_rng = SmallRng::seed_from_u64(60);
            for _ in 0..iterations {
                trainer.step(&dataset, &mut step_rng);
            }
            (n, trainer.evaluate_psnr(&dataset))
        })
        .collect()
}

/// Prints the scaling study.
pub fn run() {
    let points = sweep_chips(LargeScene::Garden, &[1, 2, 4, 8]);
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.chips.to_string(),
                format!("{:.1}", p.area_mm2),
                format!("{:.1}", p.power_w),
                format!("{:.0}", p.capacity_kb),
                format!("{:.2}", p.frame_seconds * 1e3),
            ]
        })
        .collect();
    print_table(
        "Chip-count scaling on the garden scene",
        &["Chips", "Area mm^2", "Power W", "Capacity KB", "Frame ms"],
        &body,
    );
    println!(
        "\nEach added chip brings its own model capacity at linear area/power\n\
         while frame time stays near-flat (compute shrinks per chip; only the\n\
         per-ray fusion traffic grows) — the alternative to a larger die whose\n\
         yield drops and bandwidth balloons (Sec. II-D)."
    );

    let psnr = psnr_vs_expert_count(260);
    let body: Vec<Vec<String>> =
        psnr.iter().map(|(n, p)| vec![n.to_string(), format!("{p:.2}")]).collect();
    print_table(
        "Convergent PSNR vs expert count (Room scene, equal per-expert size)",
        &["Experts", "PSNR (dB)"],
        &body,
    );
    println!("\nPaper reference (Fig. 13(a)): PSNR improves with the number of experts.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_scale_linearly_with_chips() {
        let points = sweep_chips(LargeScene::Room, &[1, 2, 4]);
        assert!((points[1].area_mm2 / points[0].area_mm2 - 2.0).abs() < 0.05);
        assert!(points[1].power_w > 1.8 * points[0].power_w);
        assert_eq!(points[2].capacity_kb, 4.0 * points[0].capacity_kb);
        // Per-chip gates shrink with more chips, so compute stays
        // roughly flat; the added pixel-fusion traffic grows only
        // per-ray. Frame time must stay within ~1.6x of one chip while
        // capacity quadruples.
        assert!(
            points[2].frame_seconds <= points[0].frame_seconds * 1.6,
            "4-chip frame {} vs 1-chip {}",
            points[2].frame_seconds,
            points[0].frame_seconds
        );
    }

    #[test]
    fn more_experts_do_not_lose_quality() {
        // Short-budget version of the Fig. 13(a) claim: with equal
        // per-expert capacity, 4 experts end at least as high as 1.
        let psnr = psnr_vs_expert_count(100);
        let one = psnr[0].1;
        let four = psnr[2].1;
        assert!(one.is_finite() && four.is_finite());
        assert!(four > one - 0.75, "4 experts ({four:.2} dB) should match or beat 1 ({one:.2} dB)");
    }
}
