//! Fig. 13: (a) MoE (4 small experts) versus one large model — PSNR
//! against training iterations on the Room scene; (b) PSNR and
//! required off-chip bandwidth for 2-second training across model
//! sizes.

use crate::experiments::fig3::paper_training_volume;
use crate::support::print_table;
use fusion3d_core::bandwidth::{bandwidth_for_model_size, USB_BANDWIDTH_GBS};
use fusion3d_multichip::moe::{MoeNerf, MoeTrainer};
use fusion3d_nerf::adam::AdamConfig;
use fusion3d_nerf::dataset::Dataset;
use fusion3d_nerf::encoding::HashGridConfig;
use fusion3d_nerf::model::{ModelConfig, NerfModel};
use fusion3d_nerf::sampler::SamplerConfig;
use fusion3d_nerf::scenes::{LargeScene, ProceduralScene};
use fusion3d_nerf::trainer::{Trainer, TrainerConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn room_dataset() -> Dataset {
    Dataset::from_scene(&ProceduralScene::large(LargeScene::Room), 5, 20, 0.9)
}

fn trainer_config() -> TrainerConfig {
    TrainerConfig {
        rays_per_batch: 64,
        sampler: SamplerConfig { steps_per_diagonal: 40, max_samples_per_ray: 28 },
        occupancy_resolution: 14,
        occupancy_update_interval: 24,
        occupancy_warmup: 60,
        background: fusion3d_nerf::math::Vec3::new(0.55, 0.7, 0.9),
        ..TrainerConfig::default()
    }
}

fn model_config(log2_table: u32) -> ModelConfig {
    ModelConfig {
        grid: HashGridConfig {
            levels: 4,
            features_per_level: 2,
            log2_table_size: log2_table,
            base_resolution: 4,
            max_resolution: 32,
        },
        hidden_dim: 16,
        geo_feature_dim: 7,
    }
}

/// A PSNR learning curve: `(iteration, psnr)` checkpoints.
pub type PsnrCurve = Vec<(u32, f64)>;

/// One Fig. 13(a) measurement: PSNR checkpoints over training for the
/// large single model (table size `2^large`) and an MoE of
/// `experts` small models (each `2^small`).
pub fn moe_vs_large(
    large: u32,
    small: u32,
    experts: usize,
    checkpoints: &[u32],
) -> (PsnrCurve, PsnrCurve) {
    let dataset = room_dataset();
    let cfg = trainer_config();

    let mut rng = SmallRng::seed_from_u64(11);
    let mut single = Trainer::new(NerfModel::new(model_config(large), &mut rng), cfg);
    let mut single_curve = Vec::new();
    let mut done = 0;
    for &cp in checkpoints {
        let mut step_rng = SmallRng::seed_from_u64(100 + cp as u64);
        for _ in done..cp {
            single.step(&dataset, &mut step_rng);
        }
        done = cp;
        single_curve.push((cp, single.evaluate_psnr(&dataset)));
    }

    let mut rng = SmallRng::seed_from_u64(12);
    let moe = MoeNerf::new(
        experts,
        model_config(small),
        cfg.occupancy_resolution,
        cfg.occupancy_threshold,
        &mut rng,
    );
    let mut moe_trainer = MoeTrainer::new(moe, cfg, AdamConfig::default());
    let mut moe_curve = Vec::new();
    let mut done = 0;
    for &cp in checkpoints {
        let mut step_rng = SmallRng::seed_from_u64(200 + cp as u64);
        for _ in done..cp {
            moe_trainer.step(&dataset, &mut step_rng);
        }
        done = cp;
        moe_curve.push((cp, moe_trainer.evaluate_psnr(&dataset)));
    }
    (single_curve, moe_curve)
}

/// Prints the Fig. 13(a) reproduction.
pub fn run_fig13a() {
    let checkpoints = [40, 120, 240];
    let (single, moe) = moe_vs_large(12, 10, 4, &checkpoints);
    let mut body = Vec::new();
    for ((iter, s), (_, m)) in single.iter().zip(&moe) {
        body.push(vec![iter.to_string(), format!("{s:.2}"), format!("{m:.2}")]);
    }
    print_table(
        "Fig. 13(a): PSNR vs training iterations on the Room scene",
        &["Iteration", "Single 2^12", "MoE 4 x 2^10"],
        &body,
    );
    println!(
        "\nPaper reference: the MoE of four small experts matches the single\n\
         large model's convergence (hash 4 x 2^14 vs 2^16)."
    );
}

/// Prints the Fig. 13(b) reproduction: bandwidth across model sizes at
/// paper scale, plus measured PSNR at three reduced-scale sizes.
pub fn run_fig13b() {
    // Bandwidth at paper scale, with the chip's 640 KB hash SRAM.
    let volume = paper_training_volume();
    let sram_bytes = 640 * 1024u64;
    let mut body = Vec::new();
    for log2 in [13u32, 14, 15, 16, 17, 18, 19] {
        let params = (1u64 << log2) * 10 * 2 * 2; // 10 levels, F=2, f16 storage
        let point = bandwidth_for_model_size(&volume, params, sram_bytes, 2.0);
        body.push(vec![
            format!("2^{log2}"),
            format!("{:.1} KB", params as f64 / 1024.0),
            if point.fits_on_chip { "yes".into() } else { "no".into() },
            format!("{:.2}", point.bandwidth_gbs),
        ]);
    }
    print_table(
        "Fig. 13(b): required off-chip bandwidth for 2 s training vs model size",
        &["Table size", "Params", "Fits on-chip", "BW (GB/s)"],
        &body,
    );
    println!(
        "\nUSB budget: {USB_BANDWIDTH_GBS} GB/s. With the on-chip configuration every\n\
         hash table is resident and the requirement stays at ~0.4-0.6 GB/s; prior\n\
         stage-partitioned designs at 2^16+2^18 need >40 GB/s (76% higher than ours)."
    );

    // Reduced-scale PSNR trend across model sizes.
    let dataset = room_dataset();
    let cfg = trainer_config();
    let mut rows = Vec::new();
    for log2 in [9u32, 11, 13] {
        let mut rng = SmallRng::seed_from_u64(31);
        let mut trainer = Trainer::new(NerfModel::new(model_config(log2), &mut rng), cfg);
        let mut step_rng = SmallRng::seed_from_u64(32);
        for _ in 0..160 {
            trainer.step(&dataset, &mut step_rng);
        }
        rows.push(vec![format!("2^{log2}"), format!("{:.2}", trainer.evaluate_psnr(&dataset))]);
    }
    print_table(
        "Fig. 13(b) inset: PSNR vs model size (reduced-scale training)",
        &["Table size", "PSNR (dB)"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moe_matches_single_large_model() {
        // Short-budget version of Fig. 13(a): after the same number of
        // iterations, the 4-expert MoE's PSNR is within 2 dB of the
        // single larger model (paper: comparable convergence). The
        // tolerance leaves headroom for the vendored RNG's stream
        // (see vendor/README.md), which shifts this margin slightly.
        let (single, moe) = moe_vs_large(11, 9, 4, &[80]);
        let s = single[0].1;
        let m = moe[0].1;
        assert!(s.is_finite() && m.is_finite());
        assert!(m > s - 2.0, "MoE ({m:.2} dB) should track the large model ({s:.2} dB)");
    }

    #[test]
    fn bandwidth_knee_at_sram_capacity() {
        let volume = paper_training_volume();
        let sram = 640 * 1024u64;
        let small = bandwidth_for_model_size(&volume, (1u64 << 13) * 40, sram, 2.0);
        let large = bandwidth_for_model_size(&volume, (1u64 << 19) * 40, sram, 2.0);
        assert!(small.fits_on_chip);
        assert!(small.bandwidth_gbs < USB_BANDWIDTH_GBS);
        assert!(!large.fits_on_chip);
        assert!(large.bandwidth_gbs > 10.0);
    }
}
