//! # fusion3d-bench
//!
//! The experiment harness of the Fusion-3D reproduction: one module
//! per table and figure of the paper's evaluation, each regenerating
//! the corresponding rows or series from the simulators and the
//! algorithm substrate. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.
//!
//! Run individual experiments with, e.g.:
//!
//! ```text
//! cargo run -p fusion3d-bench --release --bin table3
//! ```
//!
//! or everything at once with `--bin all_experiments` (also executed
//! by `cargo bench` through the `paper_tables` bench target).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod support;
