//! Thread-scaling benchmarks of the two multi-core hot paths: frame
//! rendering and the sharded training step. Each benchmark runs the
//! identical workload at 1, 2, 4, and 8 workers via the
//! `fusion3d-par` thread override — the outputs are bitwise-identical
//! across the sweep, so the timings isolate pure scaling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion3d_nerf::camera::{orbit_poses, Camera};
use fusion3d_nerf::dataset::Dataset;
use fusion3d_nerf::encoding::HashGridConfig;
use fusion3d_nerf::math::Vec3;
use fusion3d_nerf::model::{ModelConfig, NerfModel};
use fusion3d_nerf::pipeline::{render_image, PipelineConfig};
use fusion3d_nerf::sampler::SamplerConfig;
use fusion3d_nerf::scenes::{ProceduralScene, SyntheticScene};
use fusion3d_nerf::trainer::{Trainer, TrainerConfig};
use fusion3d_par::set_thread_override;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn bench_model() -> NerfModel {
    let mut rng = SmallRng::seed_from_u64(7);
    NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 4,
                features_per_level: 2,
                log2_table_size: 11,
                base_resolution: 4,
                max_resolution: 32,
            },
            hidden_dim: 16,
            geo_feature_dim: 7,
        },
        &mut rng,
    )
}

fn bench_render_scaling(c: &mut Criterion) {
    let model = bench_model();
    let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
    let occupancy = scene.occupancy_grid(24);
    let pose = orbit_poses(Vec3::splat(0.5), 1.25, 8)[2];
    let camera = Camera::new(pose, 64, 64, 0.9);
    let config = PipelineConfig {
        sampler: SamplerConfig { steps_per_diagonal: 96, max_samples_per_ray: 48 },
        background: Vec3::ONE,
        early_stop: true,
    };

    let mut group = c.benchmark_group("render_image_64x64");
    for threads in THREAD_SWEEP {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            set_thread_override(Some(threads));
            b.iter(|| render_image(black_box(&model), &occupancy, &camera, &config));
            set_thread_override(None);
        });
    }
    group.finish();
}

fn bench_training_scaling(c: &mut Criterion) {
    let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
    let dataset = Dataset::from_scene(&scene, 3, 16, 0.9);
    let config = TrainerConfig {
        rays_per_batch: 128,
        sampler: SamplerConfig { steps_per_diagonal: 64, max_samples_per_ray: 32 },
        occupancy_warmup: u32::MAX, // keep per-step cost stable
        ..TrainerConfig::default()
    };

    let mut group = c.benchmark_group("trainer_step_128_rays");
    for threads in THREAD_SWEEP {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            set_thread_override(Some(threads));
            let mut trainer = Trainer::new(bench_model(), config);
            let mut rng = SmallRng::seed_from_u64(13);
            b.iter(|| trainer.step(black_box(&dataset), &mut rng));
            set_thread_override(None);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_render_scaling, bench_training_scaling);
criterion_main!(benches);
