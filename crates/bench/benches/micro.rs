//! Criterion microbenchmarks of the hot kernels: the hash encoding,
//! the sampler, the bank mappings, the FIEM datapath, compositing, and
//! the chip simulator itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fusion3d_arith::fiem::{fiem_mul, int2fp_fpmul};
use fusion3d_core::sampling::{simulate_sampling, SamplingModuleConfig};
use fusion3d_mem::banks::{group_from_addresses, simulate_groups, BankMapping, VertexRequest};
use fusion3d_nerf::encoding::{HashGrid, HashGridConfig};
use fusion3d_nerf::math::{Ray, Vec3};
use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::render::{composite, composite_backward, ShadedSample};
use fusion3d_nerf::sampler::{sample_ray, SamplerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_hash_encoding(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let grid = HashGrid::with_random_init(HashGridConfig::default(), &mut rng);
    let mut out = vec![0.0f32; grid.config().output_dim()];
    let p = Vec3::new(0.31, 0.62, 0.18);
    c.bench_function("hash_grid_interpolate", |b| {
        b.iter(|| grid.interpolate(black_box(p), &mut out))
    });

    let mut grads = vec![0.0f32; grid.param_count()];
    let d_out = vec![1.0f32; grid.config().output_dim()];
    c.bench_function("hash_grid_backward", |b| {
        b.iter(|| grid.backward(black_box(p), &d_out, &mut grads))
    });
}

fn bench_sampler(c: &mut Criterion) {
    let occ = OccupancyGrid::from_oracle(32, 0.0, |p| p.distance(Vec3::splat(0.5)) < 0.3);
    let ray = Ray::new(Vec3::new(-1.0, 0.45, 0.55), Vec3::X);
    let cfg = SamplerConfig::default();
    c.bench_function("sample_ray_occupancy_gated", |b| {
        b.iter(|| sample_ray(black_box(&ray), &occ, &cfg))
    });
}

fn bench_bank_mappings(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let groups: Vec<[VertexRequest; 8]> = (0..256)
        .map(|_| group_from_addresses(std::array::from_fn(|_| rng.gen::<u32>() & 0x3FFF)))
        .collect();
    let refs: Vec<&[VertexRequest]> = groups.iter().map(|g| g.as_slice()).collect();
    c.bench_function("bank_conflicts_naive", |b| {
        b.iter(|| simulate_groups(BankMapping::LowOrderBits, refs.iter().copied()))
    });
    c.bench_function("bank_conflicts_two_level_tiling", |b| {
        b.iter(|| simulate_groups(BankMapping::TwoLevelTiling, refs.iter().copied()))
    });
}

fn bench_fiem(c: &mut Criterion) {
    c.bench_function("fiem_mul", |b| b.iter(|| fiem_mul(black_box(0.7324f32), black_box(517))));
    c.bench_function("int2fp_fpmul_reference", |b| {
        b.iter(|| int2fp_fpmul(black_box(0.7324f32), black_box(517)))
    });
}

fn bench_compositing(c: &mut Criterion) {
    let samples: Vec<ShadedSample> = (0..64)
        .map(|i| ShadedSample {
            sigma: 0.5 + (i % 7) as f32,
            color: Vec3::new(0.3, 0.5, 0.7),
            dt: 0.01,
        })
        .collect();
    c.bench_function("composite_forward", |b| {
        b.iter(|| composite(black_box(&samples), Vec3::ONE, false))
    });
    c.bench_function("composite_backward", |b| {
        b.iter(|| composite_backward(black_box(&samples), Vec3::ONE, Vec3::ONE))
    });
}

fn bench_chip_sim(c: &mut Criterion) {
    let workloads: Vec<fusion3d_nerf::sampler::RayWorkload> = (0..1024)
        .map(|i| fusion3d_nerf::sampler::RayWorkload {
            valid_pairs: 2,
            samples_per_pair: vec![8 + (i % 16) as u16, 4],
            steps_per_pair: vec![12 + (i % 24) as u16, 6],
            lattice_steps_per_pair: vec![60, 24],
        })
        .collect();
    let fusion = SamplingModuleConfig::fusion3d();
    let naive = SamplingModuleConfig::naive_baseline();
    c.bench_function("sampling_sim_dynamic", |b| {
        b.iter(|| simulate_sampling(&fusion, black_box(&workloads)))
    });
    c.bench_function("sampling_sim_naive", |b| {
        b.iter(|| simulate_sampling(&naive, black_box(&workloads)))
    });
}

fn bench_training_step(c: &mut Criterion) {
    use fusion3d_nerf::dataset::Dataset;
    use fusion3d_nerf::model::{ModelConfig, NerfModel};
    use fusion3d_nerf::scenes::{ProceduralScene, SyntheticScene};
    use fusion3d_nerf::trainer::{Trainer, TrainerConfig};

    let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
    let dataset = Dataset::from_scene(&scene, 3, 16, 0.9);
    let mut rng = SmallRng::seed_from_u64(11);
    let model = NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 4,
                features_per_level: 2,
                log2_table_size: 11,
                base_resolution: 4,
                max_resolution: 32,
            },
            hidden_dim: 16,
            geo_feature_dim: 7,
        },
        &mut rng,
    );
    let mut trainer = Trainer::new(
        model,
        TrainerConfig {
            rays_per_batch: 32,
            sampler: SamplerConfig { steps_per_diagonal: 48, max_samples_per_ray: 24 },
            occupancy_warmup: u32::MAX, // keep cost stable across iterations
            ..TrainerConfig::default()
        },
    );
    c.bench_function("trainer_step_32_rays", |b| {
        b.iter(|| trainer.step(black_box(&dataset), &mut rng))
    });
}

fn bench_quantized_mlp(c: &mut Criterion) {
    use fusion3d_nerf::mlp::{Activation, Mlp, MlpCache};
    use fusion3d_nerf::mlp_int8::QuantizedMlp;

    let mut rng = SmallRng::seed_from_u64(12);
    let mlp = Mlp::new(&[22, 32, 32, 3], Activation::Relu, Activation::Sigmoid, &mut rng);
    let q = QuantizedMlp::quantize(&mlp);
    let input: Vec<f32> = (0..22).map(|i| (i as f32 * 0.13).sin()).collect();
    let mut cache = MlpCache::new();
    c.bench_function("mlp_forward_f32", |b| {
        b.iter(|| mlp.forward(black_box(&input), &mut cache).to_vec())
    });
    c.bench_function("mlp_forward_int8", |b| b.iter(|| q.forward(black_box(&input))));
}

criterion_group!(
    benches,
    bench_hash_encoding,
    bench_sampler,
    bench_bank_mappings,
    bench_fiem,
    bench_compositing,
    bench_chip_sim,
    bench_training_step,
    bench_quantized_mlp
);
criterion_main!(benches);
