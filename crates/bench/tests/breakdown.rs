//! Integration tests for the breakdown report: exact cycle
//! attribution on every scene and bitwise-identical observability
//! output across worker-thread counts.

use fusion3d_bench::experiments::breakdown::{all_scene_breakdowns_at, scene_breakdown_at};
use fusion3d_nerf::scenes::SyntheticScene;
use fusion3d_par::set_thread_override;

/// Test trace resolution: small enough for debug-build CI, large
/// enough that every scene retains samples and multi-chunk dispatch
/// actually happens at 4 threads.
const TEST_RES: u32 = 64;

#[test]
fn attributed_cycles_sum_to_total_for_every_scene() {
    let rows = all_scene_breakdowns_at(TEST_RES);
    assert_eq!(rows.len(), SyntheticScene::ALL.len());
    for sb in &rows {
        let name = sb.scene.name();
        assert!(sb.frame.stepped.cycles > 0, "{name}: empty stepped sim");
        assert_eq!(
            sb.frame.attribution.total(),
            sb.frame.stepped.cycles,
            "{name}: attribution must cover every simulated cycle exactly once"
        );
        assert_eq!(
            sb.report.trace.child_cycles(sb.frame.root),
            sb.frame.stepped.cycles,
            "{name}: stage spans must sum to the frame root"
        );
    }
}

#[test]
fn reports_are_bitwise_identical_across_thread_counts() {
    let streams = |threads: usize| -> Vec<String> {
        set_thread_override(Some(threads));
        let rows = all_scene_breakdowns_at(TEST_RES);
        set_thread_override(None);
        rows.iter().map(|sb| sb.report.deterministic_jsonl()).collect()
    };
    let single = streams(1);
    let multi = streams(4);
    assert_eq!(single.len(), multi.len());
    for ((a, b), scene) in single.iter().zip(&multi).zip(SyntheticScene::ALL) {
        assert_eq!(a, b, "deterministic stream differs for {}", scene.name());
        assert!(!a.is_empty());
    }
}

#[test]
fn breakdown_reports_the_catalog_metrics() {
    let sb = scene_breakdown_at(SyntheticScene::Mic, TEST_RES);
    for name in [
        "frame.hit_rate",
        "frame.samples_per_ray",
        "ray.samples",
        "sampling.core_utilization",
        "noc.peak_utilization",
        "energy.total_j",
        "pipeline.cycles",
        "stage.interp.cycles",
    ] {
        assert!(sb.report.metrics.get(name).is_some(), "missing metric {name}");
    }
}
