//! The serving determinism contract: replaying a fixed request trace
//! produces bitwise-identical responses, latencies, metrics, and
//! spans at any worker count, and across back-to-back runs.
//!
//! Everything lives in one `#[test]` because the worker-count
//! override is process-global state; parallel test threads must not
//! race it.

use fusion3d_par::set_thread_override;
use fusion3d_serve::{generate, ServeConfig, ServeOutcome, ServeSim, TrafficConfig};

fn replay(threads: usize) -> (ServeOutcome, String) {
    set_thread_override(Some(threads));
    let config = ServeConfig { resolution: 20, path_len: 8, ..ServeConfig::default() };
    let mut sim = ServeSim::synthetic(8, &config).expect("eight-scene sim");
    let trace = generate(&TrafficConfig::smoke(8), 42);
    let outcome = sim.run_trace(&trace).expect("replay");
    let jsonl = outcome.report.deterministic_jsonl();
    set_thread_override(None);
    (outcome, jsonl)
}

#[test]
fn replay_is_bitwise_reproducible_across_threads_and_runs() {
    let (one, one_jsonl) = replay(1);
    let (four, four_jsonl) = replay(4);
    let (one_again, one_again_jsonl) = replay(1);

    // The replay must actually exercise the system before the
    // equality below means anything.
    assert!(one.completed > 0, "trace must complete requests");
    assert!(one.misses > 0, "eight scenes over the default budget must miss");
    assert!(one.evictions > 0, "eight scenes over the default budget must evict");

    // 1 vs 4 workers: bitwise-equal responses (pixel checksum),
    // latencies, cache history, and observability stream.
    assert_eq!(one.response_checksum, four.response_checksum, "responses diverge");
    assert_eq!(one, four, "outcome diverges across worker counts");
    assert_eq!(one_jsonl, four_jsonl, "deterministic JSONL diverges across worker counts");

    // Run-to-run: a fresh simulation replays the same history.
    assert_eq!(one, one_again, "outcome diverges across runs");
    assert_eq!(one_jsonl, one_again_jsonl, "deterministic JSONL diverges across runs");

    // The spans the lifecycle documents are present in the stream.
    for name in ["serve/batch", "serve/load", "serve/render", "serve/request"] {
        assert!(one_jsonl.contains(name), "missing span {name}");
    }
    assert!(one_jsonl.contains("serve.latency_cycles"), "missing latency histogram");
}
