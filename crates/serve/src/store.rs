//! Cold-tier scene store: encoded `.f3dm` containers plus the
//! metadata the registry needs to rebuild each scene's model.

use crate::error::ServeError;
use fusion3d_nerf::encoding::HashGridConfig;
use fusion3d_nerf::io::{self, ContainerHeader, Precision};
use fusion3d_nerf::math::Vec3;
use fusion3d_nerf::model::{ModelConfig, NerfModel};
use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::scenes::{ProceduralScene, SyntheticScene};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Identifier of a scene inside one [`SceneStore`]: a dense index
/// assigned at insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SceneId(pub u32);

impl SceneId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug)]
struct StoredScene {
    name: String,
    config: ModelConfig,
    background: Vec3,
    container: Vec<u8>,
}

/// The cold tier of the serving stack: every servable scene's encoded
/// `.f3dm` container, its model architecture (containers store only
/// parameters), and its rendering background.
///
/// The store is immutable during a trace replay; the
/// [`crate::registry::SceneRegistry`] pulls containers out of it on
/// cache misses.
#[derive(Debug, Default)]
pub struct SceneStore {
    scenes: Vec<StoredScene>,
}

impl SceneStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a scene from an already-encoded container. Returns
    /// the id future requests address it by.
    pub fn register(
        &mut self,
        name: &str,
        config: ModelConfig,
        background: Vec3,
        container: Vec<u8>,
    ) -> SceneId {
        let id = SceneId(self.scenes.len() as u32);
        self.scenes.push(StoredScene { name: name.to_string(), config, background, container });
        id
    }

    /// Registers a scene by encoding `model` + `occupancy` into a
    /// fresh container at the given precision.
    pub fn register_model(
        &mut self,
        name: &str,
        config: ModelConfig,
        background: Vec3,
        model: &NerfModel,
        occupancy: &OccupancyGrid,
        precision: Precision,
    ) -> SceneId {
        let container = io::encode_model(model, occupancy, precision);
        self.register(name, config, background, container)
    }

    /// Number of registered scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// True when no scene is registered.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// The scene's human-readable name.
    pub fn name(&self, id: SceneId) -> Option<&str> {
        self.scenes.get(id.index()).map(|s| s.name.as_str())
    }

    /// The scene's model architecture.
    pub fn config(&self, id: SceneId) -> Option<&ModelConfig> {
        self.scenes.get(id.index()).map(|s| &s.config)
    }

    /// The scene's background radiance.
    pub fn background(&self, id: SceneId) -> Option<Vec3> {
        self.scenes.get(id.index()).map(|s| s.background)
    }

    /// The scene's encoded container bytes.
    pub fn container(&self, id: SceneId) -> Option<&[u8]> {
        self.scenes.get(id.index()).map(|s| s.container.as_slice())
    }

    /// The container header, decoded via the [`io::peek_header`]
    /// load/evict hook — how the registry prices a scene against its
    /// byte budget without decoding parameters.
    pub fn header(&self, id: SceneId) -> Result<ContainerHeader, ServeError> {
        let scene = self.scenes.get(id.index()).ok_or(ServeError::UnknownScene(id.0))?;
        io::peek_header(&scene.container)
            .map_err(|source| ServeError::Decode { scene: id.0, source })
    }

    /// A store holding the first `scene_count` of the paper's eight
    /// synthetic scenes (capped at eight), each as a small
    /// randomly-initialized model encoded at `f16` with the scene's
    /// procedural occupancy grid. Deterministic: scene `k` always
    /// seeds its parameters with `k`.
    ///
    /// This is the fixture every serve test and benchmark builds on;
    /// real deployments would [`Self::register`] trained containers
    /// produced by the `fusion3d` CLI instead.
    pub fn synthetic(scene_count: usize) -> Self {
        let config = ModelConfig {
            grid: HashGridConfig {
                levels: 4,
                features_per_level: 2,
                log2_table_size: 11,
                base_resolution: 4,
                max_resolution: 32,
            },
            hidden_dim: 16,
            geo_feature_dim: 7,
        };
        let mut store = Self::new();
        for (k, scene) in SyntheticScene::ALL.iter().take(scene_count).enumerate() {
            let mut rng = SmallRng::seed_from_u64(k as u64);
            let model = NerfModel::new(config, &mut rng);
            let procedural = ProceduralScene::synthetic(*scene);
            let occupancy = procedural.occupancy_grid(24);
            store.register_model(
                scene.name(),
                config,
                procedural.background(),
                &model,
                &occupancy,
                Precision::F16,
            );
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_store_round_trips_headers() {
        let store = SceneStore::synthetic(3);
        assert_eq!(store.len(), 3);
        for k in 0..3u32 {
            let id = SceneId(k);
            let header = store.header(id).expect("header");
            let container = store.container(id).expect("container");
            assert_eq!(header.container_bytes(), container.len() as u64);
            assert!(store.name(id).is_some());
            assert!(store.background(id).is_some());
        }
        assert!(store.header(SceneId(9)).is_err());
        assert!(store.container(SceneId(9)).is_none());
    }

    #[test]
    fn synthetic_store_caps_at_eight_scenes() {
        assert_eq!(SceneStore::synthetic(64).len(), 8);
        assert!(SceneStore::synthetic(0).is_empty());
    }
}
