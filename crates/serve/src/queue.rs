//! Admission and batching queue: fixed-capacity per-scene FIFOs.

use crate::store::SceneId;
use std::collections::VecDeque;

/// One admitted render request waiting for dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Simulated cycle the request arrived at.
    pub arrival_cycle: u64,
    /// Index into the replayed camera path.
    pub pose: u32,
    /// Global admission sequence number (dispatch priority: the
    /// scene whose head ticket has the smallest `seq` goes first).
    pub seq: u64,
}

/// Admission counters of one queue.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Tickets accepted into a FIFO.
    pub admitted: u64,
    /// Tickets turned away because their scene's FIFO was full.
    pub rejected: u64,
}

/// Per-scene FIFO admission queues with a hard capacity, so overload
/// sheds requests instead of growing memory without bound.
///
/// Requests for the same scene coalesce: the scheduler drains up to
/// one batch worth of tickets from a single scene's FIFO per
/// dispatch, which is what turns concurrent traffic into the batched
/// multi-view kernel. Every FIFO is preallocated at construction;
/// [`AdmissionQueue::admit`] never allocates (lint rule H2 covers it).
#[derive(Debug)]
pub struct AdmissionQueue {
    queues: Vec<VecDeque<Ticket>>,
    per_scene_capacity: usize,
    queued: usize,
    stats: QueueStats,
}

impl AdmissionQueue {
    /// A queue set for `scene_count` scenes, each FIFO holding at
    /// most `per_scene_capacity` waiting tickets.
    pub fn new(scene_count: usize, per_scene_capacity: usize) -> Self {
        let mut queues = Vec::with_capacity(scene_count);
        for _ in 0..scene_count {
            queues.push(VecDeque::with_capacity(per_scene_capacity));
        }
        Self { queues, per_scene_capacity, queued: 0, stats: QueueStats::default() }
    }

    /// Admits one ticket, returning `false` (and counting a
    /// rejection) when the scene's FIFO is full or the scene id is
    /// out of range. Steady-state path; allocation-free.
    pub fn admit(&mut self, scene: SceneId, ticket: Ticket) -> bool {
        let capacity = self.per_scene_capacity;
        let Some(fifo) = self.queues.get_mut(scene.index()) else {
            self.stats.rejected += 1;
            return false;
        };
        if fifo.len() >= capacity {
            self.stats.rejected += 1;
            return false;
        }
        // Within the preallocated capacity, so the ring buffer never
        // grows here.
        fifo.push_back(ticket);
        self.queued += 1;
        self.stats.admitted += 1;
        true
    }

    /// Total tickets waiting across all scenes.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// True when no ticket is waiting.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Tickets waiting for one scene.
    pub fn queued_for(&self, scene: SceneId) -> usize {
        self.queues.get(scene.index()).map_or(0, |q| q.len())
    }

    /// Admission counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The scene whose head ticket has been waiting longest (smallest
    /// admission `seq`), or `None` when everything is drained — the
    /// scheduler's batching policy picks this scene next.
    pub fn oldest_scene(&self) -> Option<SceneId> {
        self.queues
            .iter()
            .enumerate()
            .filter_map(|(k, q)| q.front().map(|t| (t.seq, k)))
            .min()
            .map(|(_, k)| SceneId(k as u32))
    }

    /// Drains up to `max` tickets from one scene's FIFO, oldest
    /// first, into `out` (cleared first). `out` should be
    /// preallocated to the batch limit; within that capacity the
    /// drain does not allocate.
    pub fn pop_batch_into(&mut self, scene: SceneId, max: usize, out: &mut Vec<Ticket>) {
        out.clear();
        let Some(fifo) = self.queues.get_mut(scene.index()) else { return };
        while out.len() < max {
            let Some(ticket) = fifo.pop_front() else { break };
            self.queued -= 1;
            // lint: allow(h2): refills the caller's batch buffer
            // within its preallocated capacity, once per dispatch
            out.push(ticket);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(seq: u64) -> Ticket {
        Ticket { arrival_cycle: seq * 10, pose: 0, seq }
    }

    #[test]
    fn admits_in_fifo_order_and_batches_one_scene() {
        let mut q = AdmissionQueue::new(2, 8);
        assert!(q.admit(SceneId(0), ticket(0)));
        assert!(q.admit(SceneId(1), ticket(1)));
        assert!(q.admit(SceneId(0), ticket(2)));
        assert_eq!(q.queued(), 3);
        assert_eq!(q.oldest_scene(), Some(SceneId(0)));

        let mut batch = Vec::with_capacity(4);
        q.pop_batch_into(SceneId(0), 4, &mut batch);
        assert_eq!(batch.iter().map(|t| t.seq).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(q.oldest_scene(), Some(SceneId(1)));
        assert_eq!(q.queued(), 1);
    }

    #[test]
    fn zero_load_queue_stays_empty_and_sane() {
        let mut q = AdmissionQueue::new(3, 4);
        assert!(q.is_empty());
        assert_eq!(q.oldest_scene(), None);
        let mut batch = Vec::with_capacity(4);
        q.pop_batch_into(SceneId(1), 4, &mut batch);
        assert!(batch.is_empty());
        assert_eq!(q.stats(), QueueStats::default());
    }

    #[test]
    fn overload_rejects_beyond_capacity_without_growing() {
        let mut q = AdmissionQueue::new(1, 2);
        assert!(q.admit(SceneId(0), ticket(0)));
        assert!(q.admit(SceneId(0), ticket(1)));
        assert!(!q.admit(SceneId(0), ticket(2)), "FIFO full");
        assert!(!q.admit(SceneId(7), ticket(3)), "unknown scene");
        assert_eq!(q.queued(), 2);
        assert_eq!(q.queued_for(SceneId(0)), 2);
        assert_eq!(q.stats(), QueueStats { admitted: 2, rejected: 2 });

        // Draining reopens capacity.
        let mut batch = Vec::with_capacity(2);
        q.pop_batch_into(SceneId(0), 1, &mut batch);
        assert!(q.admit(SceneId(0), ticket(4)));
        assert_eq!(q.stats(), QueueStats { admitted: 3, rejected: 2 });
    }
}
