//! Deterministic simulated-time scheduler: the event loop that turns
//! a request trace into rendered frames, latencies, and cache
//! behavior.
//!
//! Time is simulated cycles. The event loop itself is serial — the
//! only parallelism is *inside* each batched kernel dispatch, which
//! runs on the [`fusion3d_par::Pool`] under its bitwise-determinism
//! contract — so a replayed trace produces identical responses,
//! metrics, and spans at any worker count.

use crate::error::ServeError;
use crate::queue::{AdmissionQueue, Ticket};
use crate::registry::SceneRegistry;
use crate::store::{SceneId, SceneStore};
use crate::traffic::Request;
use fusion3d_nerf::camera::{orbit_poses, Camera};
use fusion3d_nerf::math::Vec3;
use fusion3d_nerf::pipeline::{render_views_into, PipelineConfig};
use fusion3d_obs::Report;

/// Operating parameters of one serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Registry residency budget in container bytes.
    pub budget_bytes: u64,
    /// Simulated batch engines draining the queue concurrently.
    pub executors: usize,
    /// Maximum requests coalesced into one kernel dispatch.
    pub max_batch: usize,
    /// Admission FIFO capacity per scene; arrivals beyond it shed.
    pub queue_capacity: usize,
    /// Rendered frame side length in pixels (frames are square).
    pub resolution: u32,
    /// Vertical field of view of the replayed cameras, radians.
    pub fov_y: f32,
    /// Length of the orbit camera path requests replay.
    pub path_len: usize,
    /// Service cost: cycles per retained Stage-II/III sample.
    pub cycles_per_sample: u64,
    /// Fixed cycles per kernel dispatch (scheduling + launch).
    pub batch_overhead_cycles: u64,
    /// Fixed cycles per request (response readout).
    pub request_overhead_cycles: u64,
    /// Container-load bandwidth in bytes per cycle (the paper's
    /// USB-link streaming model; values below 1 are clamped to 1).
    pub load_bytes_per_cycle: u64,
    /// Record one `serve/request` span per completed request in
    /// addition to the per-dispatch spans.
    pub span_per_request: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            budget_bytes: 192 * 1024,
            executors: 2,
            max_batch: 4,
            queue_capacity: 64,
            resolution: 32,
            fov_y: 0.8,
            path_len: 12,
            cycles_per_sample: 2,
            batch_overhead_cycles: 2_000,
            request_overhead_cycles: 500,
            load_bytes_per_cycle: 1,
            span_per_request: true,
        }
    }
}

/// Everything one trace replay produced: per-request latencies, the
/// response checksum the determinism tests compare, cache counters,
/// and the full observability [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Requests rendered to completion.
    pub completed: u64,
    /// Requests shed at admission (FIFO full).
    pub rejected: u64,
    /// Cycle the last response finished at.
    pub makespan_cycles: u64,
    /// Per-request latency (arrival to response readout), in
    /// completion order.
    pub latencies: Vec<u64>,
    /// FNV-1a fold of every response frame's pixel bits, in
    /// completion order — the bitwise witness of the rendered output.
    pub response_checksum: u64,
    /// Registry hits during the replay.
    pub hits: u64,
    /// Registry misses (container decodes) during the replay.
    pub misses: u64,
    /// Registry evictions during the replay.
    pub evictions: u64,
    /// Container bytes streamed on misses during the replay.
    pub bytes_loaded: u64,
    /// Completed requests per scene id.
    pub per_scene_completed: Vec<u64>,
    /// Spans and metrics of the replay (label `serve`).
    pub report: Report,
}

impl ServeOutcome {
    /// Latency at quantile `q` in `[0, 1]` (nearest-rank over the
    /// completed requests), or 0 when nothing completed.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted.get(rank).copied().unwrap_or(0)
    }

    /// Fraction of registry lookups served without a container load.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Completed requests per second at the given simulated clock.
    pub fn throughput_rps(&self, clock_hz: f64) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.completed as f64 * clock_hz / self.makespan_cycles as f64
        }
    }
}

/// The serving simulation: store + registry + admission queue +
/// executors, replaying request traces deterministically.
///
/// All working memory — frame buffers, batch tables, sample slots —
/// is preallocated at construction and recycled per dispatch, so the
/// steady-state request path ([`AdmissionQueue::admit`] through the
/// private `render_batch` dispatch) never allocates.
#[derive(Debug)]
pub struct ServeSim {
    store: SceneStore,
    registry: SceneRegistry,
    queue: AdmissionQueue,
    config: ServeConfig,
    /// The shared orbit camera path (poses are scene-independent).
    path: Vec<Camera>,
    /// Per-scene pipeline settings (each scene keeps its background).
    pipelines: Vec<PipelineConfig>,
    /// `max_batch` recycled response frame buffers.
    frames: Vec<Vec<Vec3>>,
    /// Per-view retained-sample counts of the last dispatch.
    samples: Vec<u64>,
    /// Tickets of the dispatch being assembled.
    batch: Vec<Ticket>,
    /// View table of the dispatch being assembled.
    batch_cameras: Vec<Camera>,
    /// Busy-until cycle per executor.
    executors: Vec<u64>,
}

impl ServeSim {
    /// Builds a simulation over `store` — validating every container
    /// against the budget up front — with all serving buffers
    /// preallocated.
    ///
    /// # Errors
    ///
    /// Propagates [`SceneRegistry::new`] failures: oversized or
    /// malformed containers.
    pub fn new(store: SceneStore, config: &ServeConfig) -> Result<Self, ServeError> {
        let registry = SceneRegistry::new(&store, config.budget_bytes)?;
        let queue = AdmissionQueue::new(store.len(), config.queue_capacity.max(1));
        let resolution = config.resolution.max(1);
        let path: Vec<Camera> = orbit_poses(Vec3::new(0.5, 0.4, 0.5), 1.25, config.path_len.max(1))
            .iter()
            .map(|&pose| Camera::new(pose, resolution, resolution, config.fov_y))
            .collect();
        let pipelines: Vec<PipelineConfig> = (0..store.len() as u32)
            .map(|k| PipelineConfig {
                background: store.background(SceneId(k)).unwrap_or(Vec3::ONE),
                ..PipelineConfig::default()
            })
            .collect();
        let max_batch = config.max_batch.max(1);
        let pixels = resolution as usize * resolution as usize;
        Ok(Self {
            store,
            registry,
            queue,
            config: *config,
            path,
            pipelines,
            frames: (0..max_batch).map(|_| vec![Vec3::ZERO; pixels]).collect(),
            samples: vec![0; max_batch],
            batch: Vec::with_capacity(max_batch),
            batch_cameras: Vec::with_capacity(max_batch),
            executors: vec![0; config.executors.max(1)],
        })
    }

    /// [`ServeSim::new`] over [`SceneStore::synthetic`] — the fixture
    /// used by tests, benchmarks, and the docs examples.
    pub fn synthetic(scene_count: usize, config: &ServeConfig) -> Result<Self, ServeError> {
        Self::new(SceneStore::synthetic(scene_count), config)
    }

    /// The registry, for residency inspection.
    pub fn registry(&self) -> &SceneRegistry {
        &self.registry
    }

    /// The scene store the simulation serves from.
    pub fn store(&self) -> &SceneStore {
        &self.store
    }

    /// Replays one request trace (arrival cycles must be
    /// non-decreasing, as [`crate::traffic::generate`] produces) to
    /// completion and returns what happened.
    ///
    /// Executors start idle at cycle 0 on every call; the registry
    /// stays warm across calls, so back-to-back traces model a warmed
    /// cache. Counters in the outcome are deltas for this replay.
    ///
    /// # Errors
    ///
    /// Propagates registry failures: a request for a scene id outside
    /// the store, or a container that fails to decode on a miss.
    pub fn run_trace(&mut self, trace: &[Request]) -> Result<ServeOutcome, ServeError> {
        for executor in self.executors.iter_mut() {
            *executor = 0;
        }
        let stats0 = self.registry.stats();
        let qstats0 = self.queue.stats();
        let mut report = Report::new("serve");
        let mut latencies: Vec<u64> = Vec::with_capacity(trace.len());
        let mut per_scene_completed = vec![0u64; self.store.len()];
        let mut checksum = FNV_OFFSET;
        let mut makespan = 0u64;
        let mut seq = 0u64;
        let mut next = 0usize;
        let mut now = 0u64;

        while next < trace.len() || !self.queue.is_empty() {
            if self.queue.is_empty() {
                // Idle: jump to the next arrival.
                now = now.max(trace.get(next).map_or(now, |r| r.cycle));
            }
            next = self.admit_until(trace, next, now, &mut seq, &mut report);
            if self.queue.is_empty() {
                continue;
            }
            // Earliest-free executor (ties towards the lower index).
            let (executor, free_at) = self
                .executors
                .iter()
                .copied()
                .enumerate()
                .map(|(k, busy_until)| (busy_until, k))
                .min()
                .map(|(busy_until, k)| (k, busy_until))
                .unwrap_or((0, 0));
            if free_at > now {
                now = free_at;
                next = self.admit_until(trace, next, now, &mut seq, &mut report);
            }

            // Batching policy: the scene whose head request has
            // waited longest, drained FIFO up to the batch limit.
            let Some(scene) = self.queue.oldest_scene() else { continue };
            let (hit, loaded) = self.registry.ensure_resident(&self.store, scene)?;
            let load_cycles =
                if hit { 0 } else { loaded.div_ceil(self.config.load_bytes_per_cycle.max(1)) };
            let max_batch = self.config.max_batch.max(1);
            let mut batch = std::mem::take(&mut self.batch);
            self.queue.pop_batch_into(scene, max_batch, &mut batch);
            self.batch = batch;
            debug_assert!(!self.batch.is_empty(), "oldest_scene() implies a waiting ticket");

            let batch_span = report.trace.begin("serve/batch", now);
            if load_cycles > 0 {
                report.trace.record("serve/load", now, now + load_cycles);
            }
            let render_start = now + load_cycles;
            self.render_batch(scene);

            // Service cost: fixed dispatch overhead, then each
            // response pays for its retained samples plus readout.
            let mut done = render_start + self.config.batch_overhead_cycles;
            for k in 0..self.batch.len() {
                let ticket = self.batch.get(k).copied().unwrap_or(Ticket {
                    arrival_cycle: now,
                    pose: 0,
                    seq: 0,
                });
                let samples = self.samples.get(k).copied().unwrap_or(0);
                done +=
                    samples * self.config.cycles_per_sample + self.config.request_overhead_cycles;
                let latency = done.saturating_sub(ticket.arrival_cycle);
                latencies.push(latency);
                report.metrics.observe("serve.latency_cycles", "cycles", latency);
                report.metrics.observe("serve.samples_per_request", "samples", samples);
                if self.config.span_per_request {
                    report.trace.record("serve/request", ticket.arrival_cycle, done);
                }
                if let Some(slot) = per_scene_completed.get_mut(scene.index()) {
                    *slot += 1;
                }
                if let Some(frame) = self.frames.get(k) {
                    checksum = fold_pixels(checksum, frame);
                }
            }
            report.trace.record("serve/render", render_start, done);
            report.trace.end(batch_span, done);
            report.metrics.observe("serve.batch_size", "requests", self.batch.len() as u64);
            if !hit {
                report.metrics.observe("serve.load_cycles", "cycles", load_cycles);
            }
            if let Some(slot) = self.executors.get_mut(executor) {
                *slot = done;
            }
            makespan = makespan.max(done);
        }

        let stats = self.registry.stats();
        let qstats = self.queue.stats();
        let completed = latencies.len() as u64;
        report.metrics.counter_add("serve.requests_completed", "requests", completed);
        report.metrics.counter_add(
            "serve.requests_rejected",
            "requests",
            qstats.rejected - qstats0.rejected,
        );
        report.metrics.counter_add("serve.registry_hits", "lookups", stats.hits - stats0.hits);
        report.metrics.counter_add(
            "serve.registry_misses",
            "lookups",
            stats.misses - stats0.misses,
        );
        report.metrics.counter_add(
            "serve.registry_evictions",
            "scenes",
            stats.evictions - stats0.evictions,
        );
        report.metrics.counter_add(
            "serve.bytes_loaded",
            "bytes",
            stats.bytes_loaded - stats0.bytes_loaded,
        );
        report.metrics.gauge_set(
            "serve.resident_bytes",
            "bytes",
            self.registry.resident_bytes() as f64,
        );
        Ok(ServeOutcome {
            completed,
            rejected: qstats.rejected - qstats0.rejected,
            makespan_cycles: makespan,
            latencies,
            response_checksum: checksum,
            hits: stats.hits - stats0.hits,
            misses: stats.misses - stats0.misses,
            evictions: stats.evictions - stats0.evictions,
            bytes_loaded: stats.bytes_loaded - stats0.bytes_loaded,
            per_scene_completed,
            report,
        })
    }

    /// Admits every arrival at or before `now`, recording queue depth
    /// after each admission. Returns the index of the first pending
    /// arrival.
    fn admit_until(
        &mut self,
        trace: &[Request],
        mut next: usize,
        now: u64,
        seq: &mut u64,
        report: &mut Report,
    ) -> usize {
        while let Some(request) = trace.get(next) {
            if request.cycle > now {
                break;
            }
            let ticket = Ticket { arrival_cycle: request.cycle, pose: request.pose, seq: *seq };
            *seq += 1;
            self.queue.admit(request.scene, ticket);
            report.metrics.observe("serve.queue_depth", "requests", self.queue.queued() as u64);
            next += 1;
        }
        next
    }

    /// Renders the assembled batch (`self.batch`) of one resident
    /// scene through the multi-view kernel into the recycled frame
    /// buffers, filling `self.samples` per view. This is the
    /// steady-state hot path: everything it touches is preallocated.
    fn render_batch(&mut self, scene: SceneId) {
        self.registry.touch(scene);
        let Some((model, occupancy)) = self.registry.scene(scene) else {
            debug_assert!(false, "render_batch on a cold scene");
            return;
        };
        let Some(pipeline) = self.pipelines.get(scene.index()) else { return };
        self.batch_cameras.clear();
        let path_len = self.path.len().max(1);
        let Some(&first_pose) = self.path.first() else { return };
        for ticket in self.batch.iter() {
            let camera =
                self.path.get(ticket.pose as usize % path_len).copied().unwrap_or(first_pose);
            // lint: allow(h2): refills the recycled view table within
            // its preallocated `max_batch` capacity, once per dispatch
            self.batch_cameras.push(camera);
        }
        let n = self.batch_cameras.len().min(self.frames.len());
        let mut views: Vec<&mut [Vec3]> = self
            .frames
            .iter_mut()
            .take(n)
            .map(|frame| frame.as_mut_slice())
            // lint: allow(h2): the view-slice table is the multi-view
            // kernel's calling convention — one small allocation per
            // dispatch, amortized over every ray in the batch
            .collect();
        let Some(samples) = self.samples.get_mut(..n) else { return };
        render_views_into(
            model,
            occupancy,
            self.batch_cameras.get(..n).unwrap_or(&[]),
            pipeline,
            &mut views,
            samples,
        );
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a fold of a frame's raw pixel bits into `hash` — the cheap
/// bitwise fingerprint the determinism tests compare across thread
/// counts.
fn fold_pixels(mut hash: u64, pixels: &[Vec3]) -> u64 {
    for p in pixels {
        for bits in [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()] {
            hash ^= bits as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, TrafficConfig};

    fn small_config() -> ServeConfig {
        ServeConfig { resolution: 12, path_len: 6, ..ServeConfig::default() }
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let mut sim = ServeSim::synthetic(2, &small_config()).expect("sim");
        let outcome = sim.run_trace(&[]).expect("run");
        assert_eq!(outcome.completed, 0);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.makespan_cycles, 0);
        assert_eq!(outcome.latency_percentile(0.99), 0);
        assert_eq!(outcome.throughput_rps(1e9), 0.0);
    }

    #[test]
    fn every_request_is_accounted_for() {
        let mut sim = ServeSim::synthetic(3, &small_config()).expect("sim");
        let trace = generate(&TrafficConfig::smoke(3), 5);
        let outcome = sim.run_trace(&trace).expect("run");
        assert_eq!(outcome.completed + outcome.rejected, trace.len() as u64);
        assert_eq!(outcome.latencies.len() as u64, outcome.completed);
        assert_eq!(outcome.per_scene_completed.iter().sum::<u64>(), outcome.completed);
        assert!(outcome.makespan_cycles > 0);
        assert!(outcome.misses >= 1, "first touch of each scene must miss");
        assert!(outcome.latency_percentile(0.99) >= outcome.latency_percentile(0.5));
    }

    #[test]
    fn overload_sheds_and_zero_offered_load_idles() {
        // Overload: everything arrives at cycle 0 against one tiny FIFO.
        let config = ServeConfig { queue_capacity: 2, executors: 1, ..small_config() };
        let mut sim = ServeSim::synthetic(1, &config).expect("sim");
        let burst: Vec<Request> =
            (0..16).map(|k| Request { cycle: 0, scene: SceneId(0), pose: k as u32 }).collect();
        let outcome = sim.run_trace(&burst).expect("run");
        assert!(outcome.rejected > 0, "burst must shed");
        assert_eq!(outcome.completed + outcome.rejected, 16);

        // Zero load after the burst drains: nothing new completes.
        let idle = sim.run_trace(&[]).expect("idle run");
        assert_eq!(idle.completed + idle.rejected, 0);
    }

    #[test]
    fn warm_cache_turns_misses_into_hits() {
        let mut sim = ServeSim::synthetic(2, &small_config()).expect("sim");
        let trace = generate(&TrafficConfig::smoke(2), 8);
        let cold = sim.run_trace(&trace).expect("cold");
        let warm = sim.run_trace(&trace).expect("warm");
        assert!(warm.hit_rate() >= cold.hit_rate());
        assert_eq!(warm.misses, 0, "both scenes fit the default budget");
    }

    #[test]
    fn unknown_scene_in_trace_errors() {
        let mut sim = ServeSim::synthetic(1, &small_config()).expect("sim");
        let trace = [Request { cycle: 0, scene: SceneId(5), pose: 0 }];
        // The queue rejects out-of-range ids at admission, so the
        // trace drains as a rejection rather than an error.
        let outcome = sim.run_trace(&trace).expect("run");
        assert_eq!(outcome.rejected, 1);
        assert_eq!(outcome.completed, 0);
    }
}
