//! `fusion3d-serve` — deterministic multi-scene serving layer over
//! the Fusion-3D inference pipeline.
//!
//! The paper's end state (Sec. VII) is a shared accelerator serving
//! render requests for many reconstructed scenes at once. This crate
//! reproduces that serving stack as a simulated-time system with the
//! same discipline as the rest of the workspace: given a fixed
//! request trace, every number it produces is bitwise-identical
//! across runs, machines, and worker counts.
//!
//! The stack has four pieces, composed by [`scheduler::ServeSim`]:
//!
//! * [`store::SceneStore`] — the cold tier: encoded `.f3dm` scene
//!   containers (see [`fusion3d_nerf::io`]) keyed by [`store::SceneId`].
//! * [`registry::SceneRegistry`] — the hot tier: decoded models under
//!   an LRU byte budget, evicting the least-recently-served scene
//!   when a miss would overflow it.
//! * [`queue::AdmissionQueue`] — fixed-capacity per-scene FIFOs that
//!   coalesce concurrent requests for one scene into a single batched
//!   kernel dispatch ([`fusion3d_nerf::pipeline::render_views_into`]).
//! * [`traffic::generate`] — a closed-form open-loop traffic
//!   generator: Poisson arrivals, Zipf scene popularity, and
//!   camera-path replay, all from one seeded [`rand::rngs::SmallRng`].
//!
//! Time is simulated cycles, never the wall clock (lint rule D2 holds
//! for this crate), and the steady-state request path allocates
//! nothing (lint rule H2 covers [`queue::AdmissionQueue::admit`]
//! through the kernel dispatch). `docs/SERVING.md` walks
//! through the architecture, the request lifecycle, and the
//! determinism contract.
//!
//! ```
//! use fusion3d_serve::{ServeConfig, ServeSim, TrafficConfig};
//!
//! let mut sim = ServeSim::synthetic(2, &ServeConfig::default()).expect("fits budget");
//! let trace = fusion3d_serve::generate(&TrafficConfig::smoke(2), 7);
//! let outcome = sim.run_trace(&trace).expect("scenes resolve");
//! assert_eq!(outcome.completed + outcome.rejected, trace.len() as u64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod queue;
pub mod registry;
pub mod scheduler;
pub mod store;
pub mod traffic;

pub use error::ServeError;
pub use queue::AdmissionQueue;
pub use registry::SceneRegistry;
pub use scheduler::{ServeConfig, ServeOutcome, ServeSim};
pub use store::{SceneId, SceneStore};
pub use traffic::{generate, Request, TrafficConfig};
