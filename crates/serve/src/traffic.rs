//! Closed-form traffic generator: Poisson arrivals, Zipf scene
//! popularity, camera-path replay.
//!
//! Everything derives from one seeded [`SmallRng`], so a
//! `(TrafficConfig, seed)` pair *is* the trace: two generators with
//! the same inputs emit bitwise-identical request streams, which is
//! what the serving determinism contract replays.

use crate::store::SceneId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape of one generated request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Number of scenes requests are drawn over (ids `0..scene_count`).
    pub scene_count: usize,
    /// Total requests to emit.
    pub requests: usize,
    /// Mean Poisson inter-arrival gap in simulated cycles. The
    /// offered load knob: halving it doubles the arrival rate.
    pub mean_interarrival_cycles: f64,
    /// Zipf popularity exponent (`0` = uniform; `~1` = classic
    /// heavy-tailed scene popularity). Scene 0 is the most popular.
    pub zipf_exponent: f64,
    /// Length of the orbit camera path each scene's requests replay.
    pub path_len: u32,
}

impl TrafficConfig {
    /// A small stream for smoke tests: enough requests to exercise
    /// batching and eviction, short enough for CI.
    pub fn smoke(scene_count: usize) -> Self {
        Self {
            scene_count,
            requests: 48,
            mean_interarrival_cycles: 50_000.0,
            zipf_exponent: 0.9,
            path_len: 12,
        }
    }
}

/// One render request of a trace: which scene, seen from which pose
/// of the replayed camera path, arriving at which simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival cycle (non-decreasing across a generated trace).
    pub cycle: u64,
    /// Requested scene.
    pub scene: SceneId,
    /// Index into the scene's camera path.
    pub pose: u32,
}

/// Generates a request trace: exponential inter-arrival gaps of the
/// configured mean (a Poisson process), scene popularity by Zipf CDF
/// inversion, and per-scene camera poses replayed round-robin along
/// the path — successive requests for one scene walk its orbit in
/// order, like a client panning a reconstructed scene.
pub fn generate(config: &TrafficConfig, seed: u64) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let scene_count = config.scene_count.max(1);
    // Zipf CDF over scene ranks.
    let mut cdf = Vec::with_capacity(scene_count);
    let mut total = 0.0f64;
    for k in 0..scene_count {
        total += 1.0 / ((k + 1) as f64).powf(config.zipf_exponent);
        cdf.push(total);
    }
    let mut cursor = vec![0u32; scene_count];
    let mut out = Vec::with_capacity(config.requests);
    let mut t = 0.0f64;
    let path_len = config.path_len.max(1);
    for _ in 0..config.requests {
        let u: f64 = rng.gen();
        // Inverse-CDF exponential gap; (1 - u) avoids ln(0).
        t += -config.mean_interarrival_cycles.max(0.0) * (1.0 - u).ln();
        let v: f64 = rng.gen::<f64>() * total;
        let scene = cdf.iter().position(|&c| v < c).unwrap_or(scene_count - 1);
        let pose = cursor.get(scene).copied().unwrap_or(0);
        if let Some(c) = cursor.get_mut(scene) {
            *c = (pose + 1) % path_len;
        }
        out.push(Request { cycle: t as u64, scene: SceneId(scene as u32), pose });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let config = TrafficConfig::smoke(4);
        let a = generate(&config, 11);
        let b = generate(&config, 11);
        let c = generate(&config, 12);
        assert_eq!(a, b, "identical inputs must replay bitwise");
        assert_ne!(a, c, "the seed must matter");
        assert_eq!(a.len(), config.requests);
    }

    #[test]
    fn arrivals_are_sorted_and_scenes_in_range() {
        let config = TrafficConfig { scene_count: 5, requests: 400, ..TrafficConfig::smoke(5) };
        let trace = generate(&config, 3);
        for pair in trace.windows(2) {
            assert!(pair[0].cycle <= pair[1].cycle, "arrivals must be non-decreasing");
        }
        for r in &trace {
            assert!((r.scene.0 as usize) < config.scene_count);
            assert!(r.pose < config.path_len);
        }
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let config = TrafficConfig {
            scene_count: 6,
            requests: 3000,
            zipf_exponent: 1.1,
            ..TrafficConfig::smoke(6)
        };
        let trace = generate(&config, 9);
        let mut counts = [0u32; 6];
        for r in &trace {
            counts[r.scene.0 as usize] += 1;
        }
        assert!(counts[0] > 2 * counts[5], "rank 0 should dominate the tail: {counts:?}");
    }

    #[test]
    fn poses_replay_the_camera_path_in_order() {
        let config =
            TrafficConfig { scene_count: 1, requests: 30, path_len: 8, ..TrafficConfig::smoke(1) };
        let trace = generate(&config, 4);
        for (k, r) in trace.iter().enumerate() {
            assert_eq!(r.pose, (k as u32) % 8, "single-scene poses walk the orbit");
        }
    }

    #[test]
    fn mean_interarrival_tracks_the_configured_rate() {
        let config = TrafficConfig {
            scene_count: 2,
            requests: 4000,
            mean_interarrival_cycles: 1000.0,
            ..TrafficConfig::smoke(2)
        };
        let trace = generate(&config, 21);
        let span = trace.last().map_or(0, |r| r.cycle) as f64;
        let mean = span / trace.len() as f64;
        assert!((mean - 1000.0).abs() < 100.0, "empirical mean gap {mean}");
    }
}
