//! Hot-tier scene registry: decoded models under an LRU byte budget.

use crate::error::ServeError;
use crate::store::{SceneId, SceneStore};
use fusion3d_nerf::io;
use fusion3d_nerf::model::NerfModel;
use fusion3d_nerf::occupancy::OccupancyGrid;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Cumulative cache statistics of one registry.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests served from a resident model.
    pub hits: u64,
    /// Requests that had to decode their container first.
    pub misses: u64,
    /// Scenes displaced to make room.
    pub evictions: u64,
    /// Container bytes decoded across all misses.
    pub bytes_loaded: u64,
}

#[derive(Debug)]
struct Slot {
    model: NerfModel,
    occupancy: OccupancyGrid,
    resident: bool,
    bytes: u64,
    last_use: u64,
}

/// The hot tier of the serving stack: one decoded model slot per
/// scene, of which at most `budget_bytes` worth (priced by container
/// size via the [`io::peek_header`] hook) are resident at a time.
///
/// Eviction is strict LRU over the deterministic `last_use` sequence
/// counter (ties broken towards the smaller scene id), so the
/// hit/miss/eviction history of a replayed trace is itself
/// reproducible. Model *shells* (architecture-shaped parameter
/// buffers) are built once at construction; a miss only re-decodes
/// parameters into the existing shell, so steady-state serving never
/// rebuilds a model.
#[derive(Debug)]
pub struct SceneRegistry {
    slots: Vec<Slot>,
    budget_bytes: u64,
    resident_bytes: u64,
    tick: u64,
    stats: RegistryStats,
    eviction_log: Vec<u32>,
}

impl SceneRegistry {
    /// Builds a registry over every scene of `store`, with one
    /// architecture-shaped model shell per scene, all initially cold.
    ///
    /// # Errors
    ///
    /// [`ServeError::BudgetTooSmall`] when any single container
    /// exceeds `budget_bytes` (it could never be made resident), and
    /// [`ServeError::Decode`] when a container header is malformed or
    /// its shape disagrees with the registered architecture.
    pub fn new(store: &SceneStore, budget_bytes: u64) -> Result<Self, ServeError> {
        let mut slots = Vec::with_capacity(store.len());
        for k in 0..store.len() as u32 {
            let id = SceneId(k);
            let header = store.header(id)?;
            let bytes = header.container_bytes();
            if bytes > budget_bytes {
                return Err(ServeError::BudgetTooSmall {
                    scene: k,
                    container_bytes: bytes,
                    budget_bytes,
                });
            }
            let config = *store.config(id).ok_or(ServeError::UnknownScene(k))?;
            // Shell parameters are fully overwritten on load; the
            // seed only has to be deterministic, not meaningful.
            let mut rng = SmallRng::seed_from_u64(k as u64);
            let model = NerfModel::new(config, &mut rng);
            if header.param_count() != model.param_count() as u64 {
                return Err(ServeError::Decode {
                    scene: k,
                    source: io::DecodeError::ShapeMismatch {
                        expected: (model.param_count() as u64, 0, 0),
                        found: header.param_counts,
                    },
                });
            }
            let occupancy = OccupancyGrid::new(header.occupancy_resolution, 0.0);
            slots.push(Slot { model, occupancy, resident: false, bytes, last_use: 0 });
        }
        Ok(Self {
            slots,
            budget_bytes,
            resident_bytes: 0,
            tick: 0,
            stats: RegistryStats::default(),
            eviction_log: Vec::new(),
        })
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Number of scenes currently resident.
    pub fn resident_count(&self) -> usize {
        self.slots.iter().filter(|s| s.resident).count()
    }

    /// True when the scene's model is decoded and servable.
    pub fn is_resident(&self, id: SceneId) -> bool {
        self.slots.get(id.index()).is_some_and(|s| s.resident)
    }

    /// Cumulative cache statistics.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Scene ids in the order they were evicted, oldest first — the
    /// observable record the LRU unit tests assert on.
    pub fn eviction_order(&self) -> &[u32] {
        &self.eviction_log
    }

    /// Marks the scene as just-used without loading it. Called on the
    /// steady-state dispatch path; allocation-free.
    pub fn touch(&mut self, id: SceneId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.slots.get_mut(id.index()) {
            slot.last_use = tick;
        }
    }

    /// Borrows the scene's decoded model and occupancy grid, or
    /// `None` while it is cold. Steady-state path; allocation-free.
    pub fn scene(&self, id: SceneId) -> Option<(&NerfModel, &OccupancyGrid)> {
        let slot = self.slots.get(id.index())?;
        if !slot.resident {
            return None;
        }
        Some((&slot.model, &slot.occupancy))
    }

    /// Makes the scene resident, evicting least-recently-used scenes
    /// until its container fits the budget, and bumps its use clock.
    /// Returns `(hit, bytes_loaded)`: `(true, 0)` when it was already
    /// resident, `(false, container_bytes)` after a decode.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] for an id outside the store and
    /// [`ServeError::Decode`] when the container fails to decode.
    pub fn ensure_resident(
        &mut self,
        store: &SceneStore,
        id: SceneId,
    ) -> Result<(bool, u64), ServeError> {
        let bytes = match self.slots.get(id.index()) {
            None => return Err(ServeError::UnknownScene(id.0)),
            Some(slot) if slot.resident => {
                self.stats.hits += 1;
                self.touch(id);
                return Ok((true, 0));
            }
            Some(slot) => slot.bytes,
        };
        while self.resident_bytes + bytes > self.budget_bytes {
            let Some(victim) = self.lru_resident() else { break };
            self.evict(victim);
        }
        let container = store.container(id).ok_or(ServeError::UnknownScene(id.0))?;
        let slot = self.slots.get_mut(id.index()).ok_or(ServeError::UnknownScene(id.0))?;
        slot.occupancy = io::decode_model_into(container, &mut slot.model)
            .map_err(|source| ServeError::Decode { scene: id.0, source })?;
        slot.resident = true;
        self.resident_bytes += bytes;
        self.stats.misses += 1;
        self.stats.bytes_loaded += bytes;
        self.touch(id);
        Ok((false, bytes))
    }

    /// The least-recently-used resident scene (ties towards the
    /// smaller id), or `None` when nothing is resident.
    fn lru_resident(&self) -> Option<SceneId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.resident)
            .min_by_key(|(k, s)| (s.last_use, *k))
            .map(|(k, _)| SceneId(k as u32))
    }

    fn evict(&mut self, id: SceneId) {
        if let Some(slot) = self.slots.get_mut(id.index()) {
            if slot.resident {
                slot.resident = false;
                self.resident_bytes = self.resident_bytes.saturating_sub(slot.bytes);
                self.stats.evictions += 1;
                self.eviction_log.push(id.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (SceneStore, u64) {
        let store = SceneStore::synthetic(4);
        let per_scene = store.header(SceneId(0)).expect("header").container_bytes();
        (store, per_scene)
    }

    #[test]
    fn miss_then_hit_then_lru_eviction_order() {
        let (store, per_scene) = fixture();
        // Budget for exactly two resident scenes.
        let mut reg = SceneRegistry::new(&store, 2 * per_scene).expect("registry");
        assert_eq!(reg.resident_count(), 0);

        assert_eq!(reg.ensure_resident(&store, SceneId(0)).expect("load 0"), (false, per_scene));
        assert_eq!(reg.ensure_resident(&store, SceneId(1)).expect("load 1"), (false, per_scene));
        assert_eq!(reg.ensure_resident(&store, SceneId(0)).expect("hit 0"), (true, 0));
        assert_eq!(reg.resident_count(), 2);
        assert_eq!(reg.resident_bytes(), 2 * per_scene);

        // Scene 1 is now least recently used: loading 2 must evict it.
        assert_eq!(reg.ensure_resident(&store, SceneId(2)).expect("load 2"), (false, per_scene));
        assert!(!reg.is_resident(SceneId(1)));
        assert!(reg.is_resident(SceneId(0)) && reg.is_resident(SceneId(2)));
        assert_eq!(reg.eviction_order(), &[1]);

        // Touch 0, then load 3: LRU is 2.
        reg.touch(SceneId(0));
        reg.ensure_resident(&store, SceneId(3)).expect("load 3");
        assert_eq!(reg.eviction_order(), &[1, 2]);

        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 4, 2));
        assert_eq!(stats.bytes_loaded, 4 * per_scene);
    }

    #[test]
    fn lru_ties_break_towards_smaller_id() {
        let (store, per_scene) = fixture();
        let mut reg = SceneRegistry::new(&store, 4 * per_scene).expect("registry");
        for k in 0..3 {
            reg.ensure_resident(&store, SceneId(k)).expect("load");
        }
        // Force identical last_use ticks is impossible (the clock is
        // strictly increasing), so the tie rule is exercised through
        // construction order: after equalizing use recency via fresh
        // loads, the earliest-loaded scene is the LRU victim.
        let mut tight = SceneRegistry::new(&store, 3 * per_scene).expect("registry");
        for k in 0..3 {
            tight.ensure_resident(&store, SceneId(k)).expect("load");
        }
        tight.ensure_resident(&store, SceneId(3)).expect("load 3");
        assert_eq!(tight.eviction_order(), &[0]);
    }

    #[test]
    fn oversized_container_is_rejected_up_front() {
        let (store, per_scene) = fixture();
        let err = SceneRegistry::new(&store, per_scene - 1).expect_err("too small");
        assert!(matches!(err, ServeError::BudgetTooSmall { scene: 0, .. }), "{err}");
    }

    #[test]
    fn reload_after_eviction_restores_identical_parameters() {
        let (store, per_scene) = fixture();
        let mut reg = SceneRegistry::new(&store, per_scene).expect("registry");
        reg.ensure_resident(&store, SceneId(0)).expect("load 0");
        let before: Vec<f32> = {
            let (model, _) = reg.scene(SceneId(0)).expect("resident");
            model.grid().params().to_vec()
        };
        reg.ensure_resident(&store, SceneId(1)).expect("load 1 evicts 0");
        assert!(reg.scene(SceneId(0)).is_none());
        reg.ensure_resident(&store, SceneId(0)).expect("reload 0");
        let (model, _) = reg.scene(SceneId(0)).expect("resident again");
        assert_eq!(model.grid().params(), before.as_slice(), "reload must be bitwise");
    }
}
