//! Error type of the serving layer.

use fusion3d_nerf::io::DecodeError;

/// Errors surfaced by the serving layer. All are configuration or
/// artifact problems detected before or during a trace replay; the
/// steady-state request path itself is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A request or configuration referenced a scene id the store
    /// does not hold.
    UnknownScene(u32),
    /// A scene's container is larger than the whole registry budget,
    /// so it could never be made resident.
    BudgetTooSmall {
        /// The offending scene.
        scene: u32,
        /// Its container size in bytes.
        container_bytes: u64,
        /// The configured registry budget in bytes.
        budget_bytes: u64,
    },
    /// A container failed to decode against its registered model
    /// architecture.
    Decode {
        /// The offending scene.
        scene: u32,
        /// The underlying container error.
        source: DecodeError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownScene(id) => write!(f, "unknown scene id {id}"),
            ServeError::BudgetTooSmall { scene, container_bytes, budget_bytes } => write!(
                f,
                "scene {scene} needs {container_bytes} B but the registry budget is {budget_bytes} B"
            ),
            ServeError::Decode { scene, source } => {
                write!(f, "scene {scene} container failed to decode: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}
