//! The assembled multi-chip system: four scaled-up chips plus an I/O
//! module on an 8-layer PCB (Fig. 4(b)), with system-level
//! performance, power, and balance reporting.

use crate::comm::{moe_bytes, FrameWorkload};
use fusion3d_core::chip::FusionChip;
use fusion3d_core::config::ChipConfig;
use fusion3d_nerf::sampler::RayWorkload;

/// The chip-to-chip link substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Off-board (host) bandwidth in GB/s — the USB-class budget.
    pub offboard_gbs: f64,
    /// Intra-system (chip ↔ I/O module) aggregate bandwidth in GB/s.
    pub intra_gbs: f64,
    /// Per-transfer latency in microseconds.
    pub latency_us: f64,
    /// Link energy in picojoules per bit.
    pub energy_pj_per_bit: f64,
}

impl LinkModel {
    /// The measured PCB prototype: 0.6 GB/s off-board, 2.4 GB/s
    /// aggregate intra-system, board-level latencies, ~2 pJ/bit.
    pub fn pcb() -> Self {
        LinkModel { offboard_gbs: 0.6, intra_gbs: 2.4, latency_us: 1.0, energy_pj_per_bit: 2.0 }
    }

    /// A chiplet-class in-package interconnect (Sec. VIII): an order
    /// of magnitude more bandwidth at a fraction of the energy.
    pub fn chiplet() -> Self {
        LinkModel { offboard_gbs: 0.6, intra_gbs: 89.6, latency_us: 0.05, energy_pj_per_bit: 0.062 }
    }

    /// Seconds to move `bytes` over the intra-system links.
    pub fn intra_transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.intra_gbs * 1e9)
    }

    /// Joules to move `bytes` across chips.
    pub fn transfer_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.energy_pj_per_bit * 1e-12
    }
}

/// Configuration of the multi-chip system.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChipConfig {
    /// Per-chip hardware configuration.
    pub chip: ChipConfig,
    /// Number of compute chips.
    pub chips: usize,
    /// Link substrate.
    pub link: LinkModel,
    /// I/O-module area overhead as a fraction of the compute chips'
    /// total (the paper: 0.5 %).
    pub io_area_overhead: f64,
    /// I/O-module SRAM overhead as a fraction of the compute chips'
    /// total (the paper: 2.3 %).
    pub io_sram_overhead: f64,
    /// I/O-module power in watts.
    pub io_power_w: f64,
}

impl MultiChipConfig {
    /// The paper's system: four scaled-up chips on the PCB prototype.
    pub fn fusion3d() -> Self {
        MultiChipConfig {
            chip: ChipConfig::scaled_up(),
            chips: 4,
            link: LinkModel::pcb(),
            io_area_overhead: 0.005,
            io_sram_overhead: 0.023,
            io_power_w: 0.1,
        }
    }

    /// Total die area including the I/O module, in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.chip.die_area_mm2 * self.chips as f64 * (1.0 + self.io_area_overhead)
    }

    /// Total SRAM including the I/O module, in KB.
    pub fn total_sram_kb(&self) -> f64 {
        self.chip.total_sram_kb() * self.chips as f64 * (1.0 + self.io_sram_overhead)
    }

    /// Typical total power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.chip.typical_power_w * self.chips as f64 + self.io_power_w
    }
}

/// System-level simulation result for one frame or training step.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Per-chip compute seconds (sorted by chip index).
    pub chip_seconds: Vec<f64>,
    /// Communication seconds over the intra-system links.
    pub comm_seconds: f64,
    /// End-to-end seconds (slowest chip + fused communication).
    pub total_seconds: f64,
    /// Unique scene sample points processed (max over chips'
    /// assigned work measured at the system level).
    pub total_points: u64,
    /// Energy in joules (chips + links + I/O module).
    pub energy_j: f64,
}

impl SystemReport {
    /// Workload imbalance: slowest chip over mean chip time.
    pub fn imbalance(&self) -> f64 {
        if self.chip_seconds.is_empty() {
            return 1.0;
        }
        let max = self.chip_seconds.iter().cloned().fold(0.0, f64::max);
        let mean: f64 = self.chip_seconds.iter().sum::<f64>() / self.chip_seconds.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Scene points per second at the system level.
    pub fn points_per_second(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.total_points as f64 / self.total_seconds
        } else {
            0.0
        }
    }
}

/// The multi-chip system simulator.
#[derive(Debug)]
pub struct MultiChipSystem {
    config: MultiChipConfig,
    chips: Vec<FusionChip>,
}

impl MultiChipSystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero chips.
    pub fn new(config: MultiChipConfig) -> Self {
        assert!(config.chips > 0, "system needs at least one chip");
        let chips = (0..config.chips).map(|_| FusionChip::new(config.chip)).collect();
        MultiChipSystem { config, chips }
    }

    /// The paper's four-chip system.
    pub fn fusion3d() -> Self {
        MultiChipSystem::new(MultiChipConfig::fusion3d())
    }

    /// Builds a system whose chips run *without* the two-level hash
    /// tiling: each chip's Stage-II gathers take its entry of
    /// `per_chip_gather_cycles` (mean cycles per eight-corner fetch,
    /// 1.0 being conflict-free). Because the conflict rate depends on
    /// each chip's own hash-table contents and access stream, the
    /// factors differ per chip — the Technique T4 imbalance mechanism
    /// (Challenge C4).
    ///
    /// # Panics
    ///
    /// Panics if the factor count differs from the chip count.
    pub fn with_per_chip_gather_cycles(
        config: MultiChipConfig,
        per_chip_gather_cycles: &[f64],
    ) -> Self {
        assert_eq!(per_chip_gather_cycles.len(), config.chips, "need one gather factor per chip");
        let chips = per_chip_gather_cycles
            .iter()
            .map(|&g| FusionChip::new(config.chip).with_mean_gather_cycles(g))
            .collect();
        MultiChipSystem { config, chips }
    }

    /// The system configuration.
    pub fn config(&self) -> &MultiChipConfig {
        &self.config
    }

    /// The compute chips.
    pub fn chips(&self) -> &[FusionChip] {
        &self.chips
    }

    /// Throughput per watt in points per second per watt, the Table IV
    /// metric.
    pub fn points_per_second_per_watt(&self, points_per_second: f64) -> f64 {
        points_per_second / self.config.total_power_w()
    }

    /// Simulates one frame (or training batch) given each chip's
    /// Stage-I workload, as produced by
    /// `MoeNerf::per_chip_workloads`.
    ///
    /// `training` selects the training pipeline on every chip.
    ///
    /// # Panics
    ///
    /// Panics if `per_chip_workloads.len()` differs from the chip
    /// count.
    pub fn simulate(
        &self,
        per_chip_workloads: &[Vec<RayWorkload>],
        training: bool,
    ) -> SystemReport {
        assert_eq!(per_chip_workloads.len(), self.chips.len(), "need one workload per chip");
        let mut chip_seconds = Vec::with_capacity(self.chips.len());
        let mut total_points = 0u64;
        let mut rays = 0u64;
        let mut chip_energy = 0.0f64;
        for (chip, workloads) in self.chips.iter().zip(per_chip_workloads) {
            let samples: u64 = workloads.iter().map(|w| w.total_samples() as u64).sum();
            let steps: u64 = workloads.iter().map(|w| w.total_steps() as u64).sum();
            let trace = fusion3d_nerf::pipeline::FrameTrace {
                workloads: workloads.clone(),
                total_samples: samples,
                total_steps: steps,
            };
            let report = if training {
                chip.simulate_training_step(&trace)
            } else {
                chip.simulate_frame(&trace)
            };
            chip_seconds.push(report.seconds);
            chip_energy += report.energy_j;
            total_points = total_points.max(samples);
            rays = rays.max(trace.ray_count() as u64);
        }
        // Fusion traffic: ray broadcast + per-chip pixel partial sums.
        let comm = moe_bytes(
            &FrameWorkload { rays, samples: total_points, feature_dim: 20, training },
            self.chips.len() as u64,
        );
        let comm_seconds = self.config.link.intra_transfer_seconds(comm);
        let slowest = chip_seconds.iter().cloned().fold(0.0, f64::max);
        let io_energy = self.config.io_power_w * (slowest + comm_seconds);
        SystemReport {
            total_seconds: slowest + comm_seconds,
            comm_seconds,
            energy_j: chip_energy + self.config.link.transfer_energy_j(comm) + io_energy,
            chip_seconds,
            total_points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(steps: u16, samples: u16) -> RayWorkload {
        RayWorkload {
            valid_pairs: 1,
            samples_per_pair: vec![samples],
            steps_per_pair: vec![steps],
            lattice_steps_per_pair: vec![steps.saturating_mul(3)],
        }
    }

    fn uniform_chip_workloads(chips: usize, rays: usize, samples: u16) -> Vec<Vec<RayWorkload>> {
        (0..chips).map(|_| (0..rays).map(|_| workload(samples + 4, samples)).collect()).collect()
    }

    #[test]
    fn table_iv_resource_totals() {
        let cfg = MultiChipConfig::fusion3d();
        // Table IV: 35 mm², 4500 KB, 6.0 W.
        assert!((cfg.total_area_mm2() - 35.0).abs() < 0.5, "{}", cfg.total_area_mm2());
        assert!((cfg.total_sram_kb() - 4500.0).abs() < 25.0, "{}", cfg.total_sram_kb());
        assert!((cfg.total_power_w() - 6.0).abs() < 0.1, "{}", cfg.total_power_w());
    }

    #[test]
    fn throughput_per_watt_matches_table_iv_scale() {
        let sys = MultiChipSystem::fusion3d();
        // At the single-chip sustained rate of ~591 M pts/s the system
        // delivers ~98.5 M pts/s/W.
        let per_watt = sys.points_per_second_per_watt(591e6);
        assert!((per_watt / 1e6 - 98.5).abs() < 2.0, "{per_watt}");
    }

    #[test]
    fn balanced_workloads_have_unit_imbalance() {
        let sys = MultiChipSystem::fusion3d();
        let report = sys.simulate(&uniform_chip_workloads(4, 256, 12), false);
        assert!((report.imbalance() - 1.0).abs() < 1e-9);
        assert!(report.total_seconds > 0.0);
        assert!(report.energy_j > 0.0);
        assert!(report.points_per_second() > 0.0);
    }

    #[test]
    fn straggler_chip_bounds_the_system() {
        let sys = MultiChipSystem::fusion3d();
        let mut wl = uniform_chip_workloads(4, 256, 12);
        // Chip 2 gets 4x the work.
        wl[2] = (0..256).map(|_| workload(52, 48)).collect();
        let report = sys.simulate(&wl, false);
        assert!(report.imbalance() > 1.5, "imbalance {}", report.imbalance());
        let balanced = sys.simulate(&uniform_chip_workloads(4, 256, 12), false);
        assert!(report.total_seconds > balanced.total_seconds);
    }

    #[test]
    fn training_is_slower_than_inference() {
        let sys = MultiChipSystem::fusion3d();
        let wl = uniform_chip_workloads(4, 128, 16);
        let inf = sys.simulate(&wl, false);
        let train = sys.simulate(&wl, true);
        assert!(train.total_seconds > inf.total_seconds);
    }

    #[test]
    fn untiled_chips_create_system_imbalance() {
        // Technique T4's system-level effect: per-chip bank-conflict
        // rates differ, so without tiling the chips finish at
        // different times and the slowest bounds the system.
        let wl = uniform_chip_workloads(4, 256, 12);
        let tiled = MultiChipSystem::fusion3d().simulate(&wl, false);
        let naive = MultiChipSystem::with_per_chip_gather_cycles(
            MultiChipConfig::fusion3d(),
            &[2.2, 2.7, 2.4, 2.5],
        )
        .simulate(&wl, false);
        assert!((tiled.imbalance() - 1.0).abs() < 1e-9, "tiled chips stay in lock step");
        assert!(naive.imbalance() > 1.02, "naive imbalance {}", naive.imbalance());
        // The slowdown is bounded by how often Stage II is the
        // bottleneck; it must be clearly visible either way.
        assert!(
            naive.total_seconds > 1.2 * tiled.total_seconds,
            "conflicts slow the system: {} vs {}",
            naive.total_seconds,
            tiled.total_seconds
        );
    }

    #[test]
    fn chiplet_link_cuts_comm_time_and_energy() {
        let pcb = LinkModel::pcb();
        let chiplet = LinkModel::chiplet();
        let bytes = 10_000_000;
        assert!(chiplet.intra_transfer_seconds(bytes) < pcb.intra_transfer_seconds(bytes));
        assert!(chiplet.transfer_energy_j(bytes) < pcb.transfer_energy_j(bytes) / 10.0);
    }

    #[test]
    #[should_panic(expected = "one workload per chip")]
    fn workload_count_must_match() {
        let sys = MultiChipSystem::fusion3d();
        sys.simulate(&uniform_chip_workloads(3, 16, 4), false);
    }
}
