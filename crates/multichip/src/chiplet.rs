//! Chiplet-based scaling analysis (Sec. VIII, Fig. 14).
//!
//! With an in-package interconnect, the I/O module can host a buffer
//! that caches model data beyond the compute chips' SRAM, letting the
//! same chips be *temporally* reused for larger models while the
//! off-package bandwidth stays at 0.6 GB/s. The buffer is not free:
//! Fig. 14(b) plots how the I/O module's area must grow with model
//! size. This module reproduces that trade-off.

/// SRAM area density at 28 nm, in mm² per KB (from the compute chips'
/// post-layout: ~3.1 mm² of SRAM macros hold 1099 KB).
pub const SRAM_MM2_PER_KB: f64 = 0.0028;

/// The I/O module's logic area without any buffer, in mm² (0.5 % of
/// the four-chip system).
pub const IO_LOGIC_AREA_MM2: f64 = 0.175;

/// One point of the Fig. 14(b) sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipletIoPoint {
    /// Model parameter storage in KB.
    pub model_kb: f64,
    /// Buffer the I/O module must add, in KB.
    pub buffer_kb: f64,
    /// Resulting I/O-module area in mm².
    pub io_area_mm2: f64,
}

/// Computes the I/O-module area needed to keep off-package bandwidth
/// at 0.6 GB/s for a model of `model_kb`, when the compute chips
/// together provide `chips_sram_kb` of parameter SRAM.
///
/// Any parameter data beyond the chips' capacity must live in the
/// I/O-module buffer so it can be streamed to the chips over the
/// in-package links instead of off-package.
pub fn io_module_area(model_kb: f64, chips_sram_kb: f64) -> ChipletIoPoint {
    let buffer_kb = (model_kb - chips_sram_kb).max(0.0);
    ChipletIoPoint {
        model_kb,
        buffer_kb,
        io_area_mm2: IO_LOGIC_AREA_MM2 + buffer_kb * SRAM_MM2_PER_KB,
    }
}

/// Sweeps the Fig. 14(b) model-size axis (hash-table exponents), with
/// `features × 4` bytes per entry and `levels` tables per model.
pub fn sweep_model_sizes(
    log2_sizes: &[u32],
    levels: u32,
    features: u32,
    chips_sram_kb: f64,
) -> Vec<ChipletIoPoint> {
    log2_sizes
        .iter()
        .map(|&l| {
            debug_assert!(l < 64, "hash-table exponent must fit u64");
            let bytes = (1u64 << l) as f64 * levels as f64 * features as f64 * 4.0;
            io_module_area(bytes / 1024.0, chips_sram_kb)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_need_no_buffer() {
        let p = io_module_area(1000.0, 2560.0);
        assert_eq!(p.buffer_kb, 0.0);
        assert_eq!(p.io_area_mm2, IO_LOGIC_AREA_MM2);
    }

    #[test]
    fn area_grows_linearly_past_capacity() {
        let a = io_module_area(3000.0, 2560.0);
        let b = io_module_area(4000.0, 2560.0);
        assert!(a.buffer_kb > 0.0);
        let slope = (b.io_area_mm2 - a.io_area_mm2) / (b.model_kb - a.model_kb);
        assert!((slope - SRAM_MM2_PER_KB).abs() < 1e-12);
    }

    #[test]
    fn sweep_shows_significant_growth() {
        // Fig. 14(b): scaling the hash table from 2^14 to 2^19
        // multiplies the I/O module area substantially.
        let points = sweep_model_sizes(&[14, 15, 16, 17, 18, 19], 10, 2, 2560.0);
        assert_eq!(points.len(), 6);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert_eq!(first.buffer_kb, 0.0, "2^14 models fit on the chips");
        assert!(
            last.io_area_mm2 > 10.0 * first.io_area_mm2,
            "large models inflate the I/O module: {} vs {}",
            last.io_area_mm2,
            first.io_area_mm2
        );
        // Monotone non-decreasing.
        for w in points.windows(2) {
            assert!(w[1].io_area_mm2 >= w[0].io_area_mm2);
        }
    }
}
