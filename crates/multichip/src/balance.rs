//! Workload-balance analysis and gate rebalancing across chips.
//!
//! Challenge C4: all chips must finish before the fused result exists,
//! so the slowest chip bounds the system. Technique T4 removes the
//! *memory-access* component of runtime variation; what remains is the
//! *spatial* component — experts own different amounts of occupied
//! space. This module measures that imbalance and provides a greedy
//! rebalancer that reassigns boundary cells between neighbouring
//! experts' gates until their sample loads even out — the knob a
//! deployment turns on top of the conflict-free access T4 guarantees.

use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::sampler::RayWorkload;

/// Errors from gate rebalancing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceError {
    /// No gates were supplied; there is nothing to balance.
    NoGates,
    /// The gates do not share a resolution, so cells cannot move
    /// between them.
    ResolutionMismatch {
        /// Resolution of the first gate.
        expected: u32,
        /// First differing resolution encountered.
        found: u32,
    },
}

impl std::fmt::Display for BalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalanceError::NoGates => write!(f, "need at least one gate"),
            BalanceError::ResolutionMismatch { expected, found } => {
                write!(f, "gates must share a resolution: found {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for BalanceError {}

/// Per-chip load summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Retained samples per chip.
    pub samples: Vec<u64>,
    /// Marching steps per chip.
    pub steps: Vec<u64>,
}

impl LoadReport {
    /// Builds the report from per-chip Stage-I workloads.
    pub fn from_workloads(per_chip: &[Vec<RayWorkload>]) -> Self {
        LoadReport {
            samples: per_chip
                .iter()
                .map(|chip| chip.iter().map(|w| w.total_samples() as u64).sum())
                .collect(),
            steps: per_chip
                .iter()
                .map(|chip| chip.iter().map(|w| w.total_steps() as u64).sum())
                .collect(),
        }
    }

    /// Max-over-mean imbalance of the per-chip sample loads (1.0 is
    /// perfectly balanced).
    pub fn sample_imbalance(&self) -> f64 {
        imbalance(&self.samples)
    }

    /// Max-over-mean imbalance of the per-chip marching steps.
    pub fn step_imbalance(&self) -> f64 {
        imbalance(&self.steps)
    }

    /// Record per-chiplet loads and the imbalance gauges (Challenge C4:
    /// the slowest chip bounds the system, so the max-over-mean ratios
    /// here are what the paper's multi-chip scaling argument rests on).
    pub fn record(&self, report: &mut fusion3d_obs::Report) {
        let m = &mut report.metrics;
        for (chip, (&samples, &steps)) in self.samples.iter().zip(self.steps.iter()).enumerate() {
            // lint: allow(h2): per-chip metric keys are formatted once
            // per report flush, not per sample
            m.counter_add(&format!("chip.{chip}.samples"), "samples", samples);
            // lint: allow(h2): same — once per report flush
            m.counter_add(&format!("chip.{chip}.steps"), "steps", steps);
            m.observe("balance.chip_samples", "samples", samples);
        }
        m.gauge_set("balance.sample_imbalance", "max/mean", self.sample_imbalance());
        m.gauge_set("balance.step_imbalance", "max/mean", self.step_imbalance());
    }
}

fn imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let max = loads.iter().copied().fold(0u64, u64::max) as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

/// [`rebalance_gates`] with the balance decision recorded into an obs
/// report: occupied-cell imbalance before and after, and the number of
/// cells that moved.
///
/// # Errors
///
/// Returns [`BalanceError`] if `gates` is empty or resolutions differ
/// (nothing is recorded in that case).
pub fn rebalance_gates_observed(
    gates: &mut [OccupancyGrid],
    tolerance: f64,
    report: &mut fusion3d_obs::Report,
) -> Result<usize, BalanceError> {
    let cell_loads = |gates: &[OccupancyGrid]| -> Vec<u64> {
        gates.iter().map(|g| g.occupied_cells().count() as u64).collect()
    };
    let before = imbalance(&cell_loads(gates));
    let moved = rebalance_gates(gates, tolerance)?;
    let m = &mut report.metrics;
    m.gauge_set("balance.cells_imbalance_before", "max/mean", before);
    m.gauge_set("balance.cells_imbalance_after", "max/mean", imbalance(&cell_loads(gates)));
    m.counter_add("balance.cells_moved", "cells", moved as u64);
    Ok(moved)
}

/// Greedily rebalances per-chip occupancy gates: while the heaviest
/// gate exceeds the lightest by more than `tolerance` (fractional),
/// one occupied cell exclusive to the heaviest gate moves to the
/// lightest. Cell weight is approximated as uniform, which matches
/// the fixed-step sampler's cost model.
///
/// Returns the number of cells moved. The union of occupied cells is
/// preserved — rebalancing only changes ownership, never coverage.
///
/// # Errors
///
/// Returns [`BalanceError`] if `gates` is empty or resolutions
/// differ.
pub fn rebalance_gates(gates: &mut [OccupancyGrid], tolerance: f64) -> Result<usize, BalanceError> {
    let Some(first) = gates.first() else {
        return Err(BalanceError::NoGates);
    };
    let resolution = first.resolution();
    if let Some(bad) = gates.iter().find(|g| g.resolution() != resolution) {
        return Err(BalanceError::ResolutionMismatch {
            expected: resolution,
            found: bad.resolution(),
        });
    }
    let mut moved = 0;
    loop {
        let loads: Vec<usize> = gates.iter().map(|g| g.occupied_cells().count()).collect();
        // First-index min/max keeps the scan deterministic and avoids
        // an unwrap on the (non-empty by construction) load vector.
        let (mut heavy, mut light) = (0usize, 0usize);
        for (i, &load) in loads.iter().enumerate() {
            if load > loads[heavy] {
                heavy = i;
            }
            if load < loads[light] {
                light = i;
            }
        }
        let (heavy_load, light_load) = (loads[heavy], loads[light]);
        if heavy == light || heavy_load as f64 <= (light_load as f64 + 1.0) * (1.0 + tolerance) {
            return Ok(moved);
        }
        // Move one cell owned *only* by the heavy gate (moving a
        // shared cell would change nothing or lose coverage).
        let candidate = gates[heavy].occupied_cells().find(|&cell| {
            gates.iter().enumerate().all(|(i, g)| i == heavy || !g.is_cell_occupied(cell))
        });
        match candidate {
            Some(cell) => {
                gates[heavy].set_cell(cell, false);
                gates[light].set_cell(cell, true);
                moved += 1;
            }
            // Every heavy cell is shared: nothing exclusive to move.
            None => return Ok(moved),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_nerf::math::Vec3;

    fn workload(samples: u16) -> RayWorkload {
        RayWorkload {
            valid_pairs: 1,
            samples_per_pair: vec![samples],
            steps_per_pair: vec![samples + 4],
            lattice_steps_per_pair: vec![samples * 3],
        }
    }

    #[test]
    fn load_report_and_imbalance() {
        let per_chip = vec![
            vec![workload(10); 4], // 40 samples
            vec![workload(10); 4],
            vec![workload(30); 4], // 120 samples
        ];
        let report = LoadReport::from_workloads(&per_chip);
        assert_eq!(report.samples, vec![40, 40, 120]);
        let imb = report.sample_imbalance();
        assert!((imb - 120.0 / (200.0 / 3.0)).abs() < 1e-9);
        assert!(report.step_imbalance() > 1.0);
    }

    #[test]
    fn balanced_loads_report_unity() {
        let per_chip = vec![vec![workload(12); 8]; 4];
        let report = LoadReport::from_workloads(&per_chip);
        assert_eq!(report.sample_imbalance(), 1.0);
        assert_eq!(report.step_imbalance(), 1.0);
    }

    #[test]
    fn rebalancing_evens_exclusive_cells() {
        // Gate 0 owns a big exclusive region; gate 1 owns a small one.
        let mut a = OccupancyGrid::new(8, 0.0);
        let mut b = OccupancyGrid::new(8, 0.0);
        for cell in 0..200 {
            a.set_cell(cell, true);
        }
        for cell in 200..220 {
            b.set_cell(cell, true);
        }
        let union_before: Vec<usize> = {
            let mut v: Vec<usize> = a.occupied_cells().chain(b.occupied_cells()).collect();
            v.sort_unstable();
            v
        };
        let mut gates = [a, b];
        let moved = rebalance_gates(&mut gates, 0.1).expect("valid gates");
        assert!(moved > 0);
        let (la, lb) =
            (gates[0].occupied_cells().count() as f64, gates[1].occupied_cells().count() as f64);
        assert!(la <= (lb + 1.0) * 1.1 + 1.0, "still imbalanced: {la} vs {lb}");
        // Coverage preserved.
        let mut union_after: Vec<usize> =
            gates[0].occupied_cells().chain(gates[1].occupied_cells()).collect();
        union_after.sort_unstable();
        union_after.dedup();
        assert_eq!(union_after, union_before);
    }

    #[test]
    fn shared_cells_are_never_moved() {
        // Both gates own the same cells; nothing is exclusive, so
        // rebalancing is a no-op.
        let mut a = OccupancyGrid::new(4, 0.0);
        let mut b = OccupancyGrid::new(4, 0.0);
        for cell in 0..30 {
            a.set_cell(cell, true);
            b.set_cell(cell, true);
        }
        // Gate b additionally owns ten exclusive cells, making it the
        // heavier gate; those are the only movable ones.
        for cell in 30..40 {
            b.set_cell(cell, true);
        }
        let mut gates = [b, a];
        let moved = rebalance_gates(&mut gates, 0.05).expect("valid gates");
        // Only exclusive cells (30..40) can move.
        assert!(moved <= 10);
        for cell in 0..30 {
            assert!(gates[0].is_cell_occupied(cell) || gates[1].is_cell_occupied(cell));
        }
    }

    #[test]
    fn rebalanced_gates_balance_real_traces() {
        // A lopsided scene: geometry concentrated in one octant.
        let full =
            OccupancyGrid::from_oracle(12, 0.0, |p| p.distance(Vec3::new(0.25, 0.4, 0.25)) < 0.22);
        // Naive partition: split by X half — one side gets everything.
        let mut gates = [OccupancyGrid::new(12, 0.0), OccupancyGrid::new(12, 0.0)];
        for cell in full.occupied_cells() {
            let c = full.cell_center(cell);
            let owner = usize::from(c.x >= 0.5);
            gates[owner].set_cell(cell, true);
        }
        let before: Vec<usize> = gates.iter().map(|g| g.occupied_cells().count()).collect();
        assert!(imbalance(&before.iter().map(|&c| c as u64).collect::<Vec<_>>()) > 1.5);
        rebalance_gates(&mut gates, 0.1).expect("valid gates");
        let after: Vec<u64> = gates.iter().map(|g| g.occupied_cells().count() as u64).collect();
        assert!(imbalance(&after) < 1.15, "rebalancing failed: {after:?}");
    }

    #[test]
    fn observed_rebalance_records_decision() {
        let mut a = OccupancyGrid::new(8, 0.0);
        let mut b = OccupancyGrid::new(8, 0.0);
        for cell in 0..100 {
            a.set_cell(cell, true);
        }
        b.set_cell(200, true);
        let mut gates = [a, b];
        let mut report = fusion3d_obs::Report::new("balance");
        let moved = rebalance_gates_observed(&mut gates, 0.1, &mut report).expect("valid gates");
        assert!(moved > 0);
        let jsonl = report.deterministic_jsonl();
        assert!(jsonl.contains("balance.cells_moved"));
        assert!(jsonl.contains("balance.cells_imbalance_before"));
    }

    #[test]
    fn load_report_records_per_chip_metrics() {
        let per_chip = vec![vec![workload(10); 4], vec![workload(30); 2]];
        let report = LoadReport::from_workloads(&per_chip);
        let mut obs = fusion3d_obs::Report::new("load");
        report.record(&mut obs);
        assert!(obs.metrics.get("chip.0.samples").is_some());
        assert!(obs.metrics.get("chip.1.steps").is_some());
        assert!(obs.metrics.get("balance.sample_imbalance").is_some());
    }

    #[test]
    fn mismatched_resolutions_rejected() {
        let mut gates = [OccupancyGrid::new(4, 0.0), OccupancyGrid::new(8, 0.0)];
        assert_eq!(
            rebalance_gates(&mut gates, 0.1),
            Err(BalanceError::ResolutionMismatch { expected: 4, found: 8 })
        );
        let err = BalanceError::ResolutionMismatch { expected: 4, found: 8 };
        assert!(err.to_string().contains("share a resolution"));
    }

    #[test]
    fn empty_gates_rejected() {
        assert_eq!(rebalance_gates(&mut [], 0.1), Err(BalanceError::NoGates));
        assert!(BalanceError::NoGates.to_string().contains("at least one gate"));
    }
}
