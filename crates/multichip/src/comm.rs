//! Chip-to-chip communication models — the Technique T3 ablation
//! (Fig. 12(a), ~94 % communication saving).
//!
//! Two ways to spread a NeRF over four chips:
//!
//! * **Layer-split** (the conventional mapping \[12\]): pipeline stages
//!   or layers are assigned to chips, so every sample's intermediate
//!   activations — encoded features forward, gradients backward —
//!   cross chip boundaries.
//! * **MoE Level-1 tiling** (this work): each chip holds a complete
//!   expert; only the broadcast camera/ray inputs and per-chip pixel
//!   partial sums cross chips.

/// Per-frame workload statistics the communication models consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameWorkload {
    /// Rays (pixels) in the frame or batch.
    pub rays: u64,
    /// Total retained sample points.
    pub samples: u64,
    /// Encoded feature dimension (levels × features).
    pub feature_dim: u64,
    /// Whether gradients also flow (training doubles activation
    /// traffic).
    pub training: bool,
}

/// Bytes per pixel partial sum (RGB f32) sent to the I/O module.
const PIXEL_BYTES: u64 = 12;
/// Bytes per ray descriptor broadcast to every chip (origin +
/// direction, f32).
const RAY_BYTES: u64 = 24;
/// Bytes per feature scalar.
const FEATURE_BYTES: u64 = 4;
/// Bytes per sample coordinate record crossing a stage split.
const SAMPLE_COORD_BYTES: u64 = 20;

/// Workload bounds the byte models assume, enforced as debug
/// preconditions so the lint A2 analysis can prove every byte total
/// fits `u64`. A paper-scale frame is ~6.4e5 rays, ~8.3e6 samples,
/// 20-dimensional features on 4 chips — orders of magnitude inside
/// these rails.
const MAX_RAYS: u64 = 1 << 32;
/// See [`MAX_RAYS`].
const MAX_SAMPLES: u64 = 1 << 36;
/// See [`MAX_RAYS`].
const MAX_FEATURE_DIM: u64 = 1 << 16;
/// See [`MAX_RAYS`].
const MAX_CHIPS: u64 = 64;

/// Chip-to-chip bytes under the conventional layer-split mapping:
/// every sample's coordinates enter the feature chip(s) and its
/// encoded features (and gradients, when training) cross to the MLP
/// chip(s).
pub fn layer_split_bytes(w: &FrameWorkload, chips: u64) -> u64 {
    assert!(chips >= 2, "layer-split needs at least two chips");
    debug_assert!(
        w.samples <= MAX_SAMPLES && w.feature_dim <= MAX_FEATURE_DIM && chips <= MAX_CHIPS,
        "workload beyond the modelled scale"
    );
    let activation = w.samples * (SAMPLE_COORD_BYTES + w.feature_dim * FEATURE_BYTES);
    let grads = if w.training { w.samples * w.feature_dim * FEATURE_BYTES } else { 0 };
    // Each inter-chip boundary carries the full activation stream;
    // `chips - 1` boundaries in a pipeline mapping.
    (activation + grads) * (chips - 1)
}

/// Chip-to-chip bytes under MoE Level-1 tiling: the ray batch is
/// broadcast to every chip, and each chip returns one pixel partial
/// sum (plus its transmittance) per ray; training adds the broadcast
/// pixel-gradient return path.
pub fn moe_bytes(w: &FrameWorkload, chips: u64) -> u64 {
    assert!(chips >= 1, "MoE needs at least one chip");
    debug_assert!(w.rays <= MAX_RAYS && chips <= MAX_CHIPS, "workload beyond the modelled scale");
    let broadcast = w.rays * RAY_BYTES * chips;
    let partial_sums = w.rays * (PIXEL_BYTES + 4) * chips;
    let grad_return = if w.training { w.rays * PIXEL_BYTES * chips } else { 0 };
    broadcast + partial_sums + grad_return
}

/// The Fig. 12(a) ablation: fractional communication saving of MoE
/// tiling over layer-split on the same workload.
pub fn moe_communication_saving(w: &FrameWorkload, chips: u64) -> f64 {
    let baseline = layer_split_bytes(w, chips);
    let moe = moe_bytes(w, chips);
    if baseline == 0 {
        0.0
    } else {
        1.0 - moe as f64 / baseline as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A paper-scale frame: 800×800 rays, ~13 samples per ray,
    /// 20-dimensional features.
    fn paper_frame(training: bool) -> FrameWorkload {
        FrameWorkload { rays: 800 * 800, samples: 800 * 800 * 13, feature_dim: 20, training }
    }

    #[test]
    fn moe_saves_around_94_percent() {
        for training in [false, true] {
            let w = paper_frame(training);
            let saving = moe_communication_saving(&w, 4);
            assert!(
                (0.90..=0.98).contains(&saving),
                "saving {saving} (training={training}) outside the paper's regime"
            );
        }
    }

    #[test]
    fn saving_grows_with_sample_density() {
        let sparse = FrameWorkload { rays: 1000, samples: 3000, feature_dim: 20, training: false };
        let dense = FrameWorkload { rays: 1000, samples: 60_000, feature_dim: 20, training: false };
        assert!(
            moe_communication_saving(&dense, 4) > moe_communication_saving(&sparse, 4),
            "denser scenes amplify the activation traffic MoE avoids"
        );
    }

    #[test]
    fn moe_traffic_is_per_ray_not_per_sample() {
        let few = FrameWorkload { rays: 1000, samples: 5_000, feature_dim: 20, training: false };
        let many = FrameWorkload { rays: 1000, samples: 500_000, feature_dim: 20, training: false };
        assert_eq!(moe_bytes(&few, 4), moe_bytes(&many, 4));
        assert!(layer_split_bytes(&many, 4) > layer_split_bytes(&few, 4));
    }

    #[test]
    fn training_increases_layer_split_traffic() {
        let inf = paper_frame(false);
        let train = paper_frame(true);
        assert!(layer_split_bytes(&train, 4) > layer_split_bytes(&inf, 4));
        assert!(moe_bytes(&train, 4) > moe_bytes(&inf, 4));
    }

    #[test]
    #[should_panic(expected = "at least two chips")]
    fn layer_split_needs_multiple_chips() {
        layer_split_bytes(&paper_frame(false), 1);
    }
}
