//! The Mixture-of-Experts NeRF model (Technique T3, Level-1 Tiling).
//!
//! Instead of one large model, the scene is learned by `N` complete
//! small models ("experts"), one per chip, each with its own hash
//! tables and — crucially — its own occupancy grid, which acts as the
//! MoE *gating function* the paper identifies in the NeRF pipeline
//! itself. A pixel is produced by compositing each expert's samples
//! independently on its chip and *adding* the per-expert pixel values
//! in the I/O module:
//!
//! ```text
//! C = Σ_e C_e + background · Π_e T_e
//! ```
//!
//! where `C_e` is expert `e`'s composited radiance (black background)
//! and `T_e` its residual transmittance. Only per-pixel partial sums
//! ever cross chips, which is what slashes chip-to-chip communication
//! by ~94 % (Fig. 12(a)). During training, gradients flow to each
//! expert through its own compositing (including the shared
//! background product), and the per-expert occupancy grids gradually
//! prune the regions an expert does not own — the specialization
//! visualized in the paper's Fig. 8.

use fusion3d_nerf::adam::AdamConfig;
use fusion3d_nerf::dataset::Dataset;
use fusion3d_nerf::encoding::{Encoding, HashGrid};
use fusion3d_nerf::image::Image;
use fusion3d_nerf::math::{Ray, Vec3};
use fusion3d_nerf::model::{ModelConfig, ModelGrads, ModelOptimizer, NerfModel, PointContext};
use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::render::{composite, composite_backward, ShadedSample};
use fusion3d_nerf::sampler::{sample_ray, RayWorkload, SamplerConfig};
use fusion3d_nerf::trainer::TrainerConfig;
use rand::Rng;

/// One expert: a complete small NeRF model plus its gating occupancy
/// grid, resident on one chip.
#[derive(Debug)]
pub struct Expert<E: Encoding = HashGrid> {
    /// The expert's field.
    pub model: NerfModel<E>,
    /// The expert's occupancy grid (the MoE gate).
    pub occupancy: OccupancyGrid,
}

/// A Mixture-of-Experts NeRF: `N` complete small models whose pixel
/// outputs are fused by addition. Generic over the experts' spatial
/// encoding — the paper applies the same Level-1 tiling to TensoRF's
/// dense grids (Sec. VI-C).
#[derive(Debug)]
pub struct MoeNerf<E: Encoding = HashGrid> {
    experts: Vec<Expert<E>>,
}

impl MoeNerf<HashGrid> {
    /// Creates `expert_count` experts of the given per-expert
    /// architecture, with all occupancy grids initially full.
    ///
    /// # Panics
    ///
    /// Panics if `expert_count` is zero.
    pub fn new<R: Rng>(
        expert_count: usize,
        per_expert: ModelConfig,
        occupancy_resolution: u32,
        occupancy_threshold: f32,
        rng: &mut R,
    ) -> Self {
        assert!(expert_count > 0, "MoE needs at least one expert");
        let experts = (0..expert_count)
            .map(|_| {
                let mut model = NerfModel::new(per_expert, rng);
                // Pixel values are summed across experts, so each
                // expert's initial density is scaled down by 1/N
                // (through the exponential activation's bias) to keep
                // the fused output at single-model brightness.
                *model.density_mlp_mut().output_bias_mut(0) -= (expert_count as f32).ln();
                let mut occupancy = OccupancyGrid::new(occupancy_resolution, occupancy_threshold);
                occupancy.fill();
                Expert { model, occupancy }
            })
            .collect();
        MoeNerf { experts }
    }

    /// Creates experts whose gates are seeded with an azimuthal
    /// partition of the model cube (equal sectors around the vertical
    /// axis, with a 10 % overlap band shared between neighbours).
    ///
    /// At the paper's training scale expert specialization emerges by
    /// itself (Fig. 8); at reduced scale a symmetric start can
    /// collapse onto a single expert, so the reproduction seeds the
    /// regional structure through the gates — the occupancy-gating
    /// feedback then maintains and refines it, since an expert is
    /// never supervised (and therefore never exceeds the gating
    /// density threshold) outside its region.
    ///
    /// # Panics
    ///
    /// Panics if `expert_count` is zero.
    pub fn with_partitioned_gates<R: Rng>(
        expert_count: usize,
        per_expert: ModelConfig,
        occupancy_resolution: u32,
        occupancy_threshold: f32,
        rng: &mut R,
    ) -> Self {
        assert!(expert_count > 0, "MoE needs at least one expert");
        let sector = std::f32::consts::TAU / expert_count as f32;
        let experts = (0..expert_count)
            .map(|e| {
                let model = NerfModel::new(per_expert, rng);
                let mut occupancy = OccupancyGrid::new(occupancy_resolution, occupancy_threshold);
                for cell in 0..occupancy.cell_count() {
                    let c = occupancy.cell_center(cell);
                    let angle = (c.z - 0.5).atan2(c.x - 0.5) + std::f32::consts::PI;
                    let center = (e as f32 + 0.5) * sector;
                    let mut d = (angle - center).abs();
                    if d > std::f32::consts::PI {
                        d = std::f32::consts::TAU - d;
                    }
                    occupancy.set_cell(cell, d <= sector * 0.6);
                }
                Expert { model, occupancy }
            })
            .collect();
        MoeNerf { experts }
    }
}

impl<E: Encoding> MoeNerf<E> {
    /// Builds an MoE from pre-constructed experts (any encoding).
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty.
    pub fn from_experts(experts: Vec<Expert<E>>) -> Self {
        assert!(!experts.is_empty(), "MoE needs at least one expert");
        MoeNerf { experts }
    }

    /// The experts.
    pub fn experts(&self) -> &[Expert<E>] {
        &self.experts
    }

    /// Number of experts (chips).
    pub fn expert_count(&self) -> usize {
        self.experts.len()
    }

    /// Total learnable parameters across all experts.
    pub fn param_count(&self) -> usize {
        self.experts.iter().map(|e| e.model.param_count()).sum()
    }

    /// Renders one pixel by fusing per-expert composites.
    pub fn render_pixel(&self, ray: &Ray, sampler: &SamplerConfig, background: Vec3) -> Vec3 {
        let mut ctx = PointContext::new();
        let mut color = Vec3::ZERO;
        let mut trans_product = 1.0f32;
        for expert in &self.experts {
            let (samples, _) = sample_ray(ray, &expert.occupancy, sampler);
            let shaded: Vec<ShadedSample> = samples
                .iter()
                .map(|s| {
                    let eval = expert.model.forward(s.position, ray.direction, &mut ctx);
                    ShadedSample { sigma: eval.sigma, color: eval.color, dt: s.dt }
                })
                .collect();
            let out = composite(&shaded, Vec3::ZERO, false);
            color += out.color;
            trans_product *= out.final_transmittance;
        }
        color + background * trans_product
    }

    /// Renders a full frame.
    pub fn render_image(
        &self,
        camera: &fusion3d_nerf::camera::Camera,
        sampler: &SamplerConfig,
        background: Vec3,
    ) -> Image {
        let mut img = Image::new(camera.width(), camera.height());
        for (x, y, ray) in camera.rays() {
            img.set(x, y, self.render_pixel(&ray, sampler, background));
        }
        img
    }

    /// Captures per-expert (per-chip) Stage-I workloads for one frame,
    /// for the multi-chip workload-balance analysis.
    pub fn per_chip_workloads(
        &self,
        camera: &fusion3d_nerf::camera::Camera,
        sampler: &SamplerConfig,
    ) -> Vec<Vec<RayWorkload>> {
        self.experts
            .iter()
            .map(|e| {
                camera.rays().map(|(_, _, ray)| sample_ray(&ray, &e.occupancy, sampler).1).collect()
            })
            .collect()
    }
}

/// Trains a [`MoeNerf`] end to end with pixel-sum fusion.
#[derive(Debug)]
pub struct MoeTrainer<E: Encoding = HashGrid> {
    moe: MoeNerf<E>,
    optimizers: Vec<ModelOptimizer>,
    grads: Vec<ModelGrads>,
    config: TrainerConfig,
    iteration: u32,
}

impl<E: Encoding> MoeTrainer<E> {
    /// Creates a trainer over an existing MoE model.
    pub fn new(moe: MoeNerf<E>, config: TrainerConfig, adam: AdamConfig) -> Self {
        let optimizers = moe.experts.iter().map(|e| ModelOptimizer::new(adam, &e.model)).collect();
        let grads = moe.experts.iter().map(|e| e.model.alloc_grads()).collect();
        MoeTrainer { moe, optimizers, grads, config, iteration: 0 }
    }

    /// The MoE model.
    pub fn moe(&self) -> &MoeNerf<E> {
        &self.moe
    }

    /// Iterations completed.
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// Consumes the trainer, returning the trained MoE.
    pub fn into_moe(self) -> MoeNerf<E> {
        self.moe
    }

    fn maybe_refresh_occupancy<R: Rng>(&mut self, rng: &mut R) {
        if self.iteration >= self.config.occupancy_warmup
            && self.iteration.is_multiple_of(self.config.occupancy_update_interval)
        {
            for expert in &mut self.moe.experts {
                let model = &expert.model;
                expert.occupancy.update(|p| model.density_at(p), self.config.occupancy_decay, rng);
            }
        }
    }

    /// One optimization step on a random ray batch.
    pub fn step<R: Rng>(&mut self, dataset: &Dataset, rng: &mut R) -> f64 {
        self.maybe_refresh_occupancy(rng);
        let batch = dataset.sample_batch(self.config.rays_per_batch, rng);
        for g in &mut self.grads {
            g.zero();
        }
        let mut loss_sum = 0.0f64;
        let inv_norm = 1.0 / (batch.len() as f32 * 3.0);
        let n = self.moe.experts.len();
        let mut ctx = PointContext::new();

        for (ray, target) in &batch {
            // Forward each expert, retaining its samples and shading.
            let mut per_expert: Vec<(Vec<fusion3d_nerf::sampler::RaySample>, Vec<ShadedSample>)> =
                Vec::with_capacity(n);
            let mut color = Vec3::ZERO;
            // lint: allow(h2): reference MoE trainer keeps per-ray
            // clarity; the batched SoA trainer is the measured path
            let mut trans = vec![1.0f32; n];
            for (e, expert) in self.moe.experts.iter().enumerate() {
                let (samples, _) = sample_ray(ray, &expert.occupancy, &self.config.sampler);
                let mut shaded = Vec::with_capacity(samples.len());
                for s in &samples {
                    let eval = expert.model.forward(s.position, ray.direction, &mut ctx);
                    // lint: allow(h2): reference path — see `trans` above
                    shaded.push(ShadedSample { sigma: eval.sigma, color: eval.color, dt: s.dt });
                }
                let out = composite(&shaded, Vec3::ZERO, false);
                color += out.color;
                trans[e] = out.final_transmittance;
                // lint: allow(h2): reference path — see `trans` above
                per_expert.push((samples, shaded));
            }
            let trans_product: f32 = trans.iter().product();
            color += self.config.background * trans_product;

            let err = color - *target;
            loss_sum += (err.length_squared() / 3.0) as f64;
            let d_pixel = err * (2.0 * inv_norm);

            // Backward per expert: each expert sees the shared
            // background attenuated by the other experts'
            // transmittances, so composite_backward's background term
            // carries exactly ∂(bg · Π T)/∂(this expert).
            for (e, expert) in self.moe.experts.iter().enumerate() {
                let others: f32 =
                    trans.iter().enumerate().filter(|&(j, _)| j != e).map(|(_, &t)| t).product();
                let effective_bg = self.config.background * others;
                let (samples, shaded) = &per_expert[e];
                let sample_grads = composite_backward(shaded, effective_bg, d_pixel);
                for (s, g) in samples.iter().zip(&sample_grads) {
                    // Re-run the forward pass for this sample to fill
                    // the context, then backpropagate.
                    expert.model.forward(s.position, ray.direction, &mut ctx);
                    expert.model.backward(
                        s.position,
                        &ctx,
                        g.d_sigma,
                        g.d_color,
                        &mut self.grads[e],
                    );
                }
            }
        }

        for (expert, (opt, grads)) in
            self.moe.experts.iter_mut().zip(self.optimizers.iter_mut().zip(self.grads.iter()))
        {
            opt.step(&mut expert.model, grads);
        }
        self.iteration += 1;
        loss_sum / batch.len() as f64
    }

    /// Runs `iterations` steps, returning the mean loss of the final
    /// quarter.
    pub fn train<R: Rng>(&mut self, dataset: &Dataset, iterations: u32, rng: &mut R) -> f64 {
        let mut tail = Vec::new();
        for i in 0..iterations {
            let loss = self.step(dataset, rng);
            if i >= iterations - iterations.div_ceil(4) {
                tail.push(loss);
            }
        }
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }

    /// Mean PSNR of the MoE render against every dataset view.
    pub fn evaluate_psnr(&self, dataset: &Dataset) -> f64 {
        let mut total = 0.0;
        for view in dataset.views() {
            let rendered =
                self.moe.render_image(&view.camera, &self.config.sampler, self.config.background);
            total += rendered.psnr(&view.image);
        }
        total / dataset.views().len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_nerf::encoding::HashGridConfig;
    use fusion3d_nerf::scenes::{ProceduralScene, SyntheticScene};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_expert_config() -> ModelConfig {
        ModelConfig {
            grid: HashGridConfig {
                levels: 3,
                features_per_level: 2,
                log2_table_size: 9,
                base_resolution: 4,
                max_resolution: 16,
            },
            hidden_dim: 12,
            geo_feature_dim: 3,
        }
    }

    fn quick_trainer_config() -> TrainerConfig {
        TrainerConfig {
            rays_per_batch: 32,
            sampler: SamplerConfig { steps_per_diagonal: 32, max_samples_per_ray: 24 },
            occupancy_resolution: 12,
            occupancy_update_interval: 16,
            occupancy_warmup: 24,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn construction_and_capacity() {
        let mut rng = SmallRng::seed_from_u64(0);
        let moe = MoeNerf::new(4, small_expert_config(), 12, 0.5, &mut rng);
        assert_eq!(moe.expert_count(), 4);
        // Four experts hold four times one expert's parameters.
        let single = MoeNerf::new(1, small_expert_config(), 12, 0.5, &mut rng);
        assert_eq!(moe.param_count(), 4 * single.param_count());
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn zero_experts_rejected() {
        let mut rng = SmallRng::seed_from_u64(0);
        MoeNerf::new(0, small_expert_config(), 12, 0.5, &mut rng);
    }

    #[test]
    fn empty_gates_render_pure_background() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut moe = MoeNerf::new(2, small_expert_config(), 8, 0.5, &mut rng);
        for e in &mut moe.experts {
            e.occupancy = OccupancyGrid::new(8, 0.5); // all empty
        }
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        let bg = Vec3::new(0.2, 0.5, 0.8);
        let c = moe.render_pixel(&ray, &SamplerConfig::default(), bg);
        assert_eq!(c, bg);
    }

    #[test]
    fn fusion_is_additive_across_experts() {
        // With a black background, the MoE pixel is the sum of the
        // per-expert pixels.
        let mut rng = SmallRng::seed_from_u64(2);
        let moe = MoeNerf::new(3, small_expert_config(), 8, 0.5, &mut rng);
        let ray = Ray::new(Vec3::new(-1.0, 0.3, 0.6), Vec3::X);
        let sampler = SamplerConfig::default();
        let fused = moe.render_pixel(&ray, &sampler, Vec3::ZERO);
        let mut ctx = PointContext::new();
        let mut manual = Vec3::ZERO;
        for expert in moe.experts() {
            let (samples, _) = sample_ray(&ray, &expert.occupancy, &sampler);
            let shaded: Vec<ShadedSample> = samples
                .iter()
                .map(|s| {
                    let eval = expert.model.forward(s.position, ray.direction, &mut ctx);
                    ShadedSample { sigma: eval.sigma, color: eval.color, dt: s.dt }
                })
                .collect();
            manual += composite(&shaded, Vec3::ZERO, false).color;
        }
        assert!((fused - manual).length() < 1e-5);
    }

    #[test]
    fn moe_training_reduces_loss() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
        let dataset = Dataset::from_scene(&scene, 4, 16, 0.9);
        let mut rng = SmallRng::seed_from_u64(3);
        let moe = MoeNerf::new(2, small_expert_config(), 12, 0.5, &mut rng);
        let mut trainer = MoeTrainer::new(moe, quick_trainer_config(), AdamConfig::default());
        let first: f64 = (0..3).map(|_| trainer.step(&dataset, &mut rng)).sum::<f64>() / 3.0;
        for _ in 0..60 {
            trainer.step(&dataset, &mut rng);
        }
        let last: f64 = (0..3).map(|_| trainer.step(&dataset, &mut rng)).sum::<f64>() / 3.0;
        // The 0.8 factor leaves headroom for the vendored RNG's
        // stream (see vendor/README.md), which shifts this margin
        // slightly; the substantial-decrease intent is unchanged.
        assert!(last < first * 0.8, "MoE loss should drop: {first} -> {last}");
        assert_eq!(trainer.iteration(), 66);
    }

    #[test]
    fn partitioned_gates_cover_and_specialize() {
        let mut rng = SmallRng::seed_from_u64(9);
        let moe = MoeNerf::with_partitioned_gates(4, small_expert_config(), 12, 0.5, &mut rng);
        // Every cell is owned by at least one expert, and no expert
        // owns everything.
        let total_cells = moe.experts()[0].occupancy.cell_count();
        for cell in 0..total_cells {
            assert!(
                moe.experts().iter().any(|e| e.occupancy.is_cell_occupied(cell)),
                "cell {cell} unowned"
            );
        }
        for (i, e) in moe.experts().iter().enumerate() {
            let r = e.occupancy.occupancy_ratio();
            assert!(r > 0.1 && r < 0.6, "expert {i} gate ratio {r}");
        }
    }

    #[test]
    fn per_chip_workloads_have_frame_shape() {
        let mut rng = SmallRng::seed_from_u64(4);
        let moe = MoeNerf::new(3, small_expert_config(), 8, 0.5, &mut rng);
        let pose = fusion3d_nerf::camera::orbit_poses(Vec3::splat(0.5), 1.2, 1)[0];
        let cam = fusion3d_nerf::camera::Camera::new(pose, 8, 8, 0.8);
        let per_chip = moe.per_chip_workloads(&cam, &SamplerConfig::default());
        assert_eq!(per_chip.len(), 3);
        for chip in &per_chip {
            assert_eq!(chip.len(), 64);
        }
    }
}
