//! # fusion3d-multichip
//!
//! The Fusion-3D multi-chip system: scaling to large scenes with four
//! chips instead of a larger die —
//!
//! * [`moe`] — the Mixture-of-Experts NeRF (Technique T3 / Level-1
//!   tiling): complete small models per chip, occupancy-grid gating,
//!   pixel-sum fusion, and end-to-end MoE training;
//! * [`comm`] — chip-to-chip communication models: MoE tiling versus
//!   the conventional layer-split mapping (the Fig. 12(a) 94 % saving);
//! * [`system`] — the assembled four-chip + I/O-module system with the
//!   measured PCB link model: performance, power, energy, and workload
//!   balance (Tables IV/V);
//! * [`balance`] — per-chip load measurement and gate rebalancing
//!   (Challenge C4);
//! * [`chiplet`] — the Sec. VIII chiplet buffer-area trade-off
//!   (Fig. 14(b)).
//!
//! ```
//! use fusion3d_multichip::system::MultiChipConfig;
//!
//! let cfg = MultiChipConfig::fusion3d();
//! // Table IV resource envelope: ~35 mm², ~4.5 MB SRAM, ~6 W.
//! assert!((cfg.total_area_mm2() - 35.0).abs() < 0.5);
//! assert!((cfg.total_power_w() - 6.0).abs() < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod balance;
pub mod chiplet;
pub mod comm;
pub mod moe;
pub mod system;

pub use balance::{rebalance_gates, BalanceError, LoadReport};
pub use comm::{layer_split_bytes, moe_bytes, moe_communication_saving, FrameWorkload};
pub use moe::{Expert, MoeNerf, MoeTrainer};
pub use system::{LinkModel, MultiChipConfig, MultiChipSystem, SystemReport};
