#!/usr/bin/env bash
# Dead-link check over the Markdown docs: every relative link target
# in README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md, and docs/*.md
# must exist on disk. External (http/https/mailto) links and pure
# in-page anchors (#...) are skipped; a relative link's own #anchor
# suffix is stripped before the existence check.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for doc in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Inline markdown links: capture the (...) target of every [...](...).
  # Reference-style definitions are rare here; inline covers the tree.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in $doc: ($target)"
      status=1
    fi
  done < <(grep -o '\][(][^)]*[)]' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$status" -ne 0 ]; then
  echo "check_doc_links: dead relative links found."
else
  echo "check_doc_links: all relative doc links resolve."
fi
exit "$status"
