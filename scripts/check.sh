#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every change.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo build --release -p fusion3d-lint
cargo test --workspace -q
# Repo-specific invariants (determinism, panic-freedom, allocation-
# freedom of the hot path): exit 0 = clean, 1 = findings not in the
# committed baseline, 2 = harness error. The baseline is empty and
# should stay that way — fix the code or add a reasoned
# `// lint: allow(rule): why` instead of growing it.
cargo run --release -q -p fusion3d-lint -- --baseline lint_baseline.jsonl
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
# Docs are tier-1 too: broken intra-doc links or missing crate docs
# fail the build, and every doc example must keep compiling + passing.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
cargo test --workspace --doc -q
# The obs feature is off by default (probes compile out); make sure the
# instrumented build stays green too.
cargo test -q -p fusion3d-nerf --features obs
# Keep the throughput harness runnable; the smoke run takes ~a second
# and writes its report under target/ (full runs write BENCH_perf.json).
cargo run --release -q -p fusion3d-bench --bin perf -- --smoke --out target/BENCH_perf_smoke.json
# Serving harness smoke: run the same short trace at 1 and 4 kernel
# workers and hold the reports byte-identical (the serve determinism
# contract, docs/SERVING.md), then assert the schema keys are present.
cargo run --release -q -p fusion3d-bench --bin serve -- --smoke --threads 1 --out target/BENCH_serve_smoke.json > /dev/null
cargo run --release -q -p fusion3d-bench --bin serve -- --smoke --threads 4 --out target/BENCH_serve_smoke_t4.json > /dev/null
cmp target/BENCH_serve_smoke.json target/BENCH_serve_smoke_t4.json \
  || { echo "BENCH_serve smoke diverges between 1 and 4 threads"; exit 1; }
for key in '"schema": "fusion3d-serve-v1"' p50_latency_cycles p99_latency_cycles \
           throughput_rps hit_rate response_checksum scene_table; do
  grep -q "$key" target/BENCH_serve_smoke.json \
    || { echo "BENCH_serve smoke missing key: $key"; exit 1; }
done
# Docs must not rot: every relative link in the Markdown tree resolves.
./scripts/check_doc_links.sh
echo "All tier-1 checks passed."
