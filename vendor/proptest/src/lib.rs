//! Offline stand-in for the `proptest` crate, covering the subset the
//! workspace's property tests use: the [`proptest!`] macro with
//! `pattern in strategy` and `ident: Type` bindings, range/tuple/`Vec`
//! strategies, `prop_map`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! The container building this repository has no access to crates.io,
//! so this from-scratch implementation runs each property over a fixed
//! number of pseudo-random cases (no shrinking, no persisted failure
//! corpus). Failures panic like ordinary assertions. Swap back to the
//! registry crate when network access exists.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Number of random cases each property runs. Kept modest so the whole
/// suite stays fast; upstream proptest defaults to 256 with shrinking.
pub const CASES: u32 = 64;

/// The deterministic case generator driving all strategies
/// (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl Default for TestRng {
    fn default() -> Self {
        TestRng { state: 0x5EED_5EED_5EED_5EED }
    }
}

impl TestRng {
    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values, mirroring `proptest`'s `Strategy`.
pub trait Strategy: Sized {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, panicking if none is found in
    /// a reasonable number of attempts.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F> {
        Filter { inner: self, f, whence }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted attempts: {}", self.whence);
    }
}

/// A strategy producing one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end as f64 - self.start as f64;
                let v = self.start as f64 + rng.unit_f64() * span;
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let v = lo as f64 + rng.unit_f64() * (hi as f64 - lo as f64);
                (v as $t).clamp(lo, hi)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(hi > lo, "cannot sample from empty range");
                (lo + (rng.next_u64() as u128 % (hi - lo) as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(hi >= lo, "cannot sample from empty range");
                (lo + (rng.next_u64() as u128 % (hi - lo + 1) as u128) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size.clone(), rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A type with a default generation strategy, backing plain `ident:
/// Type` bindings in [`proptest!`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, sign-symmetric, spanning many magnitudes.
        (rng.unit_f64() as f32 - 0.5) * 2e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Builds the default strategy of a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        Strategy,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, panicking with context on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block,) => {
        $body
    };
    ($rng:ident, $body:block, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut *$rng);
        $crate::__proptest_bind!($rng, $body, $($($rest)*)?);
    };
    ($rng:ident, $body:block, $id:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $id: $ty = $crate::Arbitrary::arbitrary(&mut *$rng);
        $crate::__proptest_bind!($rng, $body, $($($rest)*)?);
    };
}

/// Defines property tests: each `fn name(bindings) { body }` item
/// becomes a `#[test]` running the body over [`CASES`] generated
/// cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::TestRng::default();
            for __proptest_case in 0..$crate::CASES {
                let _ = __proptest_case;
                #[allow(clippy::redundant_closure_call)]
                (|| {
                    #[allow(unused_mut)]
                    let mut __rng = &mut __proptest_rng;
                    $crate::__proptest_bind!(__rng, $body, $($params)*);
                })();
            }
        }
        $crate::proptest!($($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 0u32..10).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 0u32..100, f in -2.0f32..2.0, w in 0.0f32..=1.0) {
            prop_assert!(x < 100);
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((0.0..=1.0).contains(&w));
        }

        /// Mapped tuple strategies and plain-type bindings both work.
        #[test]
        fn mapped_and_plain_bindings(p in pair(), raw: u16, arr: [u32; 3]) {
            prop_assert!(p.0 <= p.1);
            prop_assert_eq!(u32::from(raw) >> 16, 0);
            prop_assert_eq!(arr.len(), 3);
        }

        /// Assumptions discard cases without failing.
        #[test]
        fn assume_discards(v in -10i32..10) {
            prop_assume!(v != 0);
            prop_assert_ne!(v, 0);
        }

        /// Vec strategies respect the size range.
        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..255, 0..32)) {
            prop_assert!(v.len() < 32);
        }
    }
}
