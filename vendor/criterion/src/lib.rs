//! Offline stand-in for the `criterion` crate, covering the subset the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! The container building this repository has no access to crates.io,
//! so this from-scratch harness measures each benchmark with a simple
//! warmup + timed-batch scheme and prints a median time per iteration
//! (no statistical analysis, HTML reports, or baseline comparison).
//! Swap back to the registry crate when network access exists.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// A named identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Overrides the sample count (accepted for API compatibility; the
    /// stand-in keeps its fixed scheme).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement time (accepted for API
    /// compatibility).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time its hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    median_ns: Option<f64>,
}

impl Bencher {
    /// Times `f`, recording the median per-iteration cost over several
    /// batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and batch-size calibration: aim for batches of at
        // least ~2 ms so Instant overhead is negligible.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let mut samples = Vec::with_capacity(7);
        for _ in 0..7 {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / per_batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.median_ns {
        Some(ns) if ns >= 1e9 => println!("bench {id:<48} {:>12.3} s/iter", ns / 1e9),
        Some(ns) if ns >= 1e6 => println!("bench {id:<48} {:>12.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1e3 => println!("bench {id:<48} {:>12.3} us/iter", ns / 1e3),
        Some(ns) => println!("bench {id:<48} {:>12.1} ns/iter", ns),
        None => println!("bench {id:<48} (no measurement)"),
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter(|| black_box(2 + 2))
        });
        group.finish();
    }
}
