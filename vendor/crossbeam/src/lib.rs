//! Offline stand-in for the `crossbeam` crate, covering the
//! `crossbeam::deque` subset the workspace's execution layer uses:
//! [`deque::Injector`], [`deque::Worker`], [`deque::Stealer`], and
//! [`deque::Steal`].
//!
//! The container building this repository has no access to crates.io,
//! so this from-scratch implementation backs the same API with
//! mutex-guarded deques instead of lock-free Chase–Lev deques. The
//! scheduling semantics (FIFO injector, per-worker deques, stealing)
//! are identical; only the synchronization cost differs, and the
//! execution layer's determinism contract never depends on scheduling
//! order. Swap back to the registry crate when network access exists.

#![warn(missing_docs)]

/// Work-stealing deques, mirroring `crossbeam-deque`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether the attempt succeeded.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// Whether the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Extracts the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Chains a fallback attempt on `Empty`/`Retry`, preferring to
        /// report `Retry` over `Empty` when both fail.
        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Success(t) => Steal::Success(t),
                Steal::Empty => f(),
                Steal::Retry => match f() {
                    Steal::Success(t) => Steal::Success(t),
                    _ => Steal::Retry,
                },
            }
        }
    }

    impl<T> FromIterator<Steal<T>> for Steal<T> {
        /// Folds attempts: the first success wins; otherwise `Retry` if
        /// any attempt needs retrying, else `Empty`.
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for s in iter {
                match s {
                    Steal::Success(t) => return Steal::Success(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    /// A FIFO injector queue shared by all workers.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`'s local deque and pops
        /// one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().expect("injector lock");
            let first = match q.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            // Move up to half the remaining queue over to the worker.
            let extra = q.len().div_ceil(2).min(16);
            let mut dest_q = dest.queue.lock().expect("worker lock");
            for _ in 0..extra {
                match q.pop_front() {
                    Some(t) => dest_q.push_back(t),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }
    }

    /// A per-thread deque whose owner pushes and pops locally while
    /// other threads steal through [`Stealer`] handles.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        fifo: bool,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker deque.
        pub fn new_fifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())), fifo: true }
        }

        /// Creates a LIFO worker deque.
        pub fn new_lifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())), fifo: false }
        }

        /// Pushes a task onto the deque.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker lock").push_back(task);
        }

        /// Pops a task in the deque's order (FIFO or LIFO).
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().expect("worker lock");
            if self.fifo {
                q.pop_front()
            } else {
                q.pop_back()
            }
        }

        /// Whether the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker lock").is_empty()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    /// A handle for stealing tasks from another thread's [`Worker`].
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front of the victim's deque.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("stealer lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the victim's deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("stealer lock").is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn injector_is_fifo() {
        let inj: Injector<u32> = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn batch_steal_moves_tasks_to_worker() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w: Worker<u32> = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty());
        let stealer = w.stealer();
        let mut seen = Vec::new();
        while let Some(t) = w.pop() {
            seen.push(t);
        }
        assert!(seen.windows(2).all(|p| p[0] < p[1]), "worker keeps order: {seen:?}");
        assert!(stealer.is_empty());
    }

    #[test]
    fn steal_collect_prefers_success() {
        let attempts = vec![Steal::Empty, Steal::Retry, Steal::Success(7u8)];
        let folded: Steal<u8> = attempts.into_iter().collect();
        assert_eq!(folded, Steal::Success(7));
        let folded: Steal<u8> = vec![Steal::Empty, Steal::Retry].into_iter().collect();
        assert!(folded.is_retry());
        let folded: Steal<u8> = vec![Steal::Empty, Steal::Empty].into_iter().collect();
        assert!(folded.is_empty());
    }

    #[test]
    fn cross_thread_stealing_drains_everything() {
        let inj: Injector<usize> = Injector::new();
        for i in 0..1000 {
            inj.push(i);
        }
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let w = Worker::new_fifo();
                    loop {
                        let task = w.pop().or_else(|| inj.steal_batch_and_pop(&w).success());
                        match task {
                            Some(_) => {
                                total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }
}
