//! Offline stand-in for the `serde` crate.
//!
//! The workspace only references serde behind the off-by-default
//! `serde` feature of `fusion3d-nerf` (derive attributes under
//! `cfg_attr`), so this stub exists purely to satisfy dependency
//! resolution while the build container has no crates.io access. It
//! exposes empty `Serialize`/`Deserialize` marker traits and no derive
//! macros; enabling the `serde` feature of `fusion3d-nerf` requires
//! the real crate. Swap back to the registry crate when network
//! access exists.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
