//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The container building this repository has no access to crates.io,
//! so this crate re-implements exactly the surface the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and
//! `fill_bytes`.
//!
//! **Value-stream compatibility:** this stand-in follows `rand
//! 0.8.5`'s algorithms (`SmallRng` is xoshiro256++ with the
//! SplitMix64-based `seed_from_u64`, `next_u32` truncates `next_u64`,
//! `Standard` floats use the 24/53-bit multiply method, integer
//! ranges use widening-multiply rejection sampling, and float ranges
//! use the `[1, 2)` mantissa-fill method), but it does **not**
//! guarantee bit-for-bit identical value streams to the registry
//! crate — e.g. float-range draws that round onto the upper bound are
//! redrawn here, where real `rand` decreases the scale instead (see
//! vendor/README.md). Seeded streams are deterministic across runs of
//! this stand-in, and workspace tests rely only on that determinism;
//! threshold-based assertions may shift slightly when swapping back
//! to the registry crate (the MoE loss test in
//! `crates/multichip/src/moe.rs` already carries headroom for this).

#![warn(missing_docs)]

/// Core random-number generation interface (mirrors `rand_core`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes (little-endian `next_u64`
    /// chunks, as `rand_core::impls::fill_bytes_via_next`).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let len = tail.len();
            tail.copy_from_slice(&self.next_u64().to_le_bytes()[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seeding interface; the workspace only uses
/// [`SeedableRng::seed_from_u64`].
pub trait SeedableRng: Sized {
    /// Deterministically derives a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] like the real crate's `Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the `Standard` distribution.
    fn gen<T: StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (Bernoulli, fixed-point
    /// `p * 2^64` threshold like the real crate).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0.0, 1.0]");
        if p >= 1.0 {
            // The real crate's saturated threshold consumes no
            // randomness.
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }
}

impl<R: RngCore> Rng for R {}

/// Random-number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++, exactly as `rand
    /// 0.8.5`'s `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result =
                self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        /// SplitMix64 expansion of the seed into the four state words,
        /// matching `Xoshiro256PlusPlus::seed_from_u64`.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }
}

/// Types samplable from the `Standard` distribution via [`Rng::gen`].
pub trait StandardValue: Sized {
    /// Draws one value, consuming the same randomness as the real
    /// crate's `Standard` distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_from_u32 {
    ($($ty:ty),*) => {$(
        impl StandardValue for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $ty
            }
        }
    )*};
}

macro_rules! standard_from_u64 {
    ($($ty:ty),*) => {$(
        impl StandardValue for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_from_u32!(u8, i8, u16, i16, u32, i32);
standard_from_u64!(u64, i64, usize, isize);

impl StandardValue for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Low half first, as the real crate.
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl StandardValue for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Compare the most significant bit (low bits of weak
        // generators can carry patterns).
        (rng.next_u32() as i32) < 0
    }
}

impl StandardValue for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24-bit multiply method, [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardValue for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit multiply method, [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a range via [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

fn wmul32(x: u32, y: u32) -> (u32, u32) {
    let t = x as u64 * y as u64;
    ((t >> 32) as u32, t as u32)
}

fn wmul64(x: u64, y: u64) -> (u64, u64) {
    let t = x as u128 * y as u128;
    ((t >> 64) as u64, t as u64)
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wmul:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                // Widening-multiply rejection sampling with the
                // largest zone that is a multiple of `range`.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$u_large as StandardValue>::sample_standard(rng);
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as $unsigned).wrapping_add(1) as $u_large;
                if range == 0 {
                    // The range covers the whole type.
                    return <$ty as StandardValue>::sample_standard(rng);
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$u_large as StandardValue>::sample_standard(rng);
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, wmul32);
uniform_int_impl!(i8, u8, u32, wmul32);
uniform_int_impl!(u16, u16, u32, wmul32);
uniform_int_impl!(i16, u16, u32, wmul32);
uniform_int_impl!(u32, u32, u32, wmul32);
uniform_int_impl!(i32, u32, u32, wmul32);
uniform_int_impl!(u64, u64, u64, wmul64);
uniform_int_impl!(i64, u64, u64, wmul64);
uniform_int_impl!(usize, usize, u64, wmul64);
uniform_int_impl!(isize, usize, u64, wmul64);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $one_exponent_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low < high, "cannot sample empty range");
                let scale = high - low;
                loop {
                    // Mantissa fill gives a value in [1, 2); shift to
                    // [0, 1) before scaling to avoid overflow.
                    let fraction =
                        <$uty as StandardValue>::sample_standard(rng) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits($one_exponent_bits | fraction);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    // Rounding can land exactly on `high`; redraw.
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                debug_assert!(low <= high, "cannot sample empty range");
                let scale = high - low;
                let fraction =
                    <$uty as StandardValue>::sample_standard(rng) >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits($one_exponent_bits | fraction);
                ((value1_2 - 1.0) * scale + low).min(high)
            }
        }
    };
}

uniform_float_impl!(f32, u32, 9u32, 0x3F80_0000u32);
uniform_float_impl!(f64, u64, 12u64, 0x3FF0_0000_0000_0000u64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            SmallRng::seed_from_u64(42).next_u64(),
            SmallRng::seed_from_u64(43).next_u64()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_floats_are_unit_interval_with_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        const N: usize = 4096;
        for _ in 0..N {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v as f64;
        }
        let mean = sum / N as f64;
        assert!((0.4..0.6).contains(&mean), "mean={mean}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((150..350).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
