//! Offline stand-in for the `parking_lot` crate: poison-free [`Mutex`]
//! and [`RwLock`] built over `std::sync`, covering the subset the
//! workspace uses.
//!
//! The container building this repository has no access to crates.io;
//! this from-scratch wrapper keeps `parking_lot`'s ergonomics (no
//! lock poisoning, guards returned directly from `lock()`) while
//! delegating the actual synchronization to the standard library.
//! Swap back to the registry crate when network access exists.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive without lock poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_conflicts() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
