//! The `fusion3d` command-line tool: train, render, inspect, and
//! simulate without writing code.
//!
//! ```text
//! fusion3d train   --scene lego --iters 400 --out lego.f3dm
//! fusion3d render  --model lego.f3dm --scene lego --out view.ppm
//! fusion3d simulate --scene lego [--multichip]
//! fusion3d scenes
//! fusion3d chip-info
//! ```
//!
//! Scenes are the built-in procedural stand-ins (see `fusion3d scenes`
//! for the list); models are `.f3dm` containers produced by `train`.

use fusion3d::core::chip::FusionChip;
use fusion3d::nerf::camera::{orbit_poses, Camera};
use fusion3d::nerf::encoding::HashGridConfig;
use fusion3d::nerf::io::{decode_model_into, encode_model, Precision};
use fusion3d::nerf::pipeline::{render_image, trace_frame, PipelineConfig};
use fusion3d::nerf::{
    Dataset, LargeScene, ModelConfig, NerfModel, ProceduralScene, SamplerConfig, SyntheticScene,
    Trainer, TrainerConfig, Vec3,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("scenes") => cmd_scenes(),
        Some("chip-info") => cmd_chip_info(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'fusion3d help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "fusion3d — instant 3D reconstruction and real-time rendering\n\
         \n\
         USAGE:\n\
           fusion3d train    --scene <name> [--iters N] [--seed N] [--f16] --out <file.f3dm>\n\
           fusion3d render   --model <file.f3dm> --scene <name> [--size N] --out <file.ppm>\n\
           fusion3d simulate --scene <name> [--multichip]\n\
           fusion3d scenes\n\
           fusion3d chip-info"
    );
}

/// Parses `--key value` pairs and `--flag` switches.
fn parse_flags(args: &[String]) -> Result<Vec<(String, Option<String>)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let key = arg.strip_prefix("--").ok_or_else(|| format!("expected --flag, got '{arg}'"))?;
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        if let Some(v) = value {
            out.push((key.to_string(), Some(v.clone())));
            i += 2;
        } else {
            out.push((key.to_string(), None));
            i += 1;
        }
    }
    Ok(out)
}

fn flag_value<'a>(flags: &'a [(String, Option<String>)], key: &str) -> Option<&'a str> {
    flags.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_deref())
}

fn flag_present(flags: &[(String, Option<String>)], key: &str) -> bool {
    flags.iter().any(|(k, _)| k == key)
}

fn find_scene(name: &str) -> Result<ProceduralScene, String> {
    for s in SyntheticScene::ALL {
        if s.name() == name {
            return Ok(ProceduralScene::synthetic(s));
        }
    }
    for s in LargeScene::ALL {
        if s.name() == name {
            return Ok(ProceduralScene::large(s));
        }
    }
    Err(format!("unknown scene '{name}' (see 'fusion3d scenes')"))
}

fn cli_model_config() -> ModelConfig {
    ModelConfig {
        grid: HashGridConfig {
            levels: 6,
            features_per_level: 2,
            log2_table_size: 13,
            base_resolution: 8,
            max_resolution: 128,
        },
        hidden_dim: 32,
        geo_feature_dim: 7,
    }
}

fn cli_trainer_config(background: Vec3) -> TrainerConfig {
    TrainerConfig {
        rays_per_batch: 128,
        sampler: SamplerConfig { steps_per_diagonal: 96, max_samples_per_ray: 64 },
        occupancy_resolution: 24,
        occupancy_update_interval: 24,
        occupancy_warmup: 48,
        background,
        ..TrainerConfig::default()
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let scene_name = flag_value(&flags, "scene").ok_or("train requires --scene")?;
    let out = flag_value(&flags, "out").ok_or("train requires --out")?;
    let iters: u32 = flag_value(&flags, "iters")
        .unwrap_or("400")
        .parse()
        .map_err(|_| "--iters must be an integer")?;
    let seed: u64 = flag_value(&flags, "seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "--seed must be an integer")?;
    let precision = if flag_present(&flags, "f16") { Precision::F16 } else { Precision::F32 };

    let scene = find_scene(scene_name)?;
    println!("Rendering training views of '{}'...", scene.name());
    let dataset = Dataset::from_scene(&scene, 8, 32, 0.9);

    let mut rng = SmallRng::seed_from_u64(seed);
    let model = NerfModel::new(cli_model_config(), &mut rng);
    println!("Training {} parameters for {iters} iterations...", model.param_count());
    let mut trainer = Trainer::new(model, cli_trainer_config(scene.background()));
    let started = std::time::Instant::now();
    for i in 0..iters {
        let stats = trainer.step(&dataset, &mut rng);
        if (i + 1) % 100 == 0 {
            println!("  iter {:>5}: loss {:.5}", i + 1, stats.loss);
        }
    }
    let psnr = trainer.evaluate_psnr(&dataset);
    println!("Done in {:.2?}: PSNR {psnr:.2} dB", started.elapsed());

    let (model, occupancy) = trainer.into_parts();
    let bytes = encode_model(&model, &occupancy, precision);
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!("Saved {} ({:.2} MB, {:?})", out, bytes.len() as f64 / 1e6, precision);
    Ok(())
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let model_path = flag_value(&flags, "model").ok_or("render requires --model")?;
    let scene_name =
        flag_value(&flags, "scene").ok_or("render requires --scene (for camera/background)")?;
    let out = flag_value(&flags, "out").ok_or("render requires --out")?;
    let size: u32 = flag_value(&flags, "size")
        .unwrap_or("128")
        .parse()
        .map_err(|_| "--size must be an integer")?;

    let scene = find_scene(scene_name)?;
    let data = std::fs::read(model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
    let mut rng = SmallRng::seed_from_u64(0);
    let mut model = NerfModel::new(cli_model_config(), &mut rng);
    let occupancy = decode_model_into(&data, &mut model).map_err(|e| e.to_string())?;

    let pose = orbit_poses(Vec3::new(0.5, 0.4, 0.5), 1.25, 8)[2];
    let camera = Camera::new(pose, size, size, 0.9);
    let config = PipelineConfig {
        sampler: SamplerConfig { steps_per_diagonal: 192, max_samples_per_ray: 128 },
        background: scene.background(),
        early_stop: true,
    };
    println!("Rendering {size}x{size}...");
    let started = std::time::Instant::now();
    let image = render_image(&model, &occupancy, &camera, &config);
    println!("Rendered in {:.2?}", started.elapsed());
    std::fs::write(out, image.to_ppm()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("Saved {out}");
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let scene_name = flag_value(&flags, "scene").ok_or("simulate requires --scene")?;
    let scene = find_scene(scene_name)?;
    let occupancy = scene.occupancy_grid(32);
    let pose = orbit_poses(Vec3::new(0.5, 0.4, 0.5), 1.25, 8)[2];
    let camera = Camera::new(pose, 160, 160, 0.9);
    let sampler = SamplerConfig { steps_per_diagonal: 512, max_samples_per_ray: 256 };
    let trace = trace_frame(&occupancy, &camera, &sampler);
    let scale = 800.0 * 800.0 / trace.ray_count() as f64;

    let chip = FusionChip::scaled_up();
    let frame = chip.simulate_frame(&trace);
    let train = chip.simulate_training_step(&trace);
    println!("Scene '{}' on the scaled-up Fusion-3D chip:", scene.name());
    println!(
        "  inference: {:.1} M pts/s sustained, {:.1} ms per 800x800 frame ({:.0} FPS)",
        frame.points_per_second() / 1e6,
        frame.seconds * scale * 1e3,
        1.0 / (frame.seconds * scale)
    );
    println!(
        "  training:  {:.1} M pts/s; {:.2} s for a 398 M-sample run to 25 PSNR",
        train.points_per_second() / 1e6,
        398e6 / train.points_per_second()
    );
    println!(
        "  energy:    {:.2} nJ/pt inference, {:.2} nJ/pt training",
        chip.config().typical_power_w / frame.points_per_second() * 1e9,
        chip.config().typical_power_w / train.points_per_second() * 1e9
    );

    if flag_present(&flags, "multichip") {
        use fusion3d::multichip::system::MultiChipSystem;
        let system = MultiChipSystem::fusion3d();
        let gates = fusion3d_bench_partition(&occupancy, 4);
        let per_chip: Vec<Vec<fusion3d::nerf::RayWorkload>> = gates
            .iter()
            .map(|g| {
                camera
                    .rays()
                    .map(|(_, _, ray)| fusion3d::nerf::sampler::sample_ray(&ray, g, &sampler).1)
                    .collect()
            })
            .collect();
        let report = system.simulate(&per_chip, false);
        println!(
            "  multi-chip (4 chips): {:.2} ms/frame at trace scale, imbalance {:.2}",
            report.total_seconds * 1e3,
            report.imbalance()
        );
    }
    Ok(())
}

/// Local copy of the bench partitioner (the CLI does not depend on the
/// bench crate): azimuthal sectors with strong-ownership pruning.
fn fusion3d_bench_partition(
    full: &fusion3d::nerf::OccupancyGrid,
    experts: usize,
) -> Vec<fusion3d::nerf::OccupancyGrid> {
    let mut grids: Vec<fusion3d::nerf::OccupancyGrid> = (0..experts)
        .map(|_| fusion3d::nerf::OccupancyGrid::new(full.resolution(), full.threshold()))
        .collect();
    let sector = std::f32::consts::TAU / experts as f32;
    for cell in full.occupied_cells() {
        let c = full.cell_center(cell);
        let angle = (c.z - 0.5).atan2(c.x - 0.5) + std::f32::consts::PI;
        for (e, grid) in grids.iter_mut().enumerate() {
            let strongly_owned_by_other = (0..experts).any(|m| {
                if m == e {
                    return false;
                }
                let center = (m as f32 + 0.5) * sector;
                let mut d = (angle - center).abs();
                if d > std::f32::consts::PI {
                    d = std::f32::consts::TAU - d;
                }
                d < 0.25 * sector
            });
            if !strongly_owned_by_other {
                grid.set_cell(cell, true);
            }
        }
    }
    grids
}

fn cmd_scenes() -> Result<(), String> {
    println!("Object scenes (NeRF-Synthetic class):");
    for s in SyntheticScene::ALL {
        let scene = ProceduralScene::synthetic(s);
        println!(
            "  {:<10} {} primitives, {:.1}% occupied",
            s.name(),
            scene.primitive_count(),
            scene.occupancy_ratio(12, 0.04) * 100.0
        );
    }
    println!("Large scenes (NeRF-360 class):");
    for s in LargeScene::ALL {
        let scene = ProceduralScene::large(s);
        println!(
            "  {:<10} {} primitives, {:.1}% occupied",
            s.name(),
            scene.primitive_count(),
            scene.occupancy_ratio(12, 0.04) * 100.0
        );
    }
    Ok(())
}

fn cmd_chip_info() -> Result<(), String> {
    use fusion3d::core::config::{ChipConfig, Module};
    for (label, cfg) in
        [("Prototype", ChipConfig::prototype()), ("Scaled-up", ChipConfig::scaled_up())]
    {
        println!(
            "{label}: {:.1} mm^2, {:.0} KB SRAM, {:.0} MHz @ {:.2} V, {:.2} W",
            cfg.die_area_mm2,
            cfg.total_sram_kb(),
            cfg.clock_mhz,
            cfg.core_voltage,
            cfg.typical_power_w
        );
        for m in Module::ALL {
            println!(
                "    {:<16} {:>5.2} mm^2  {:>6.3} W",
                m.name(),
                cfg.module_area_mm2(m),
                cfg.module_power_w(m)
            );
        }
    }
    let chip = FusionChip::scaled_up();
    println!(
        "Peak: {:.0} M pts/s inference, {:.0} M pts/s training; {:.2}/{:.2} nJ per point",
        chip.peak_inference_points_per_second() / 1e6,
        chip.peak_training_points_per_second() / 1e6,
        chip.inference_energy_per_point_nj(),
        chip.training_energy_per_point_nj()
    );
    Ok(())
}
