//! # fusion3d
//!
//! A Rust reproduction of **Fusion-3D: Integrated Acceleration for
//! Instant 3D Reconstruction and Real-Time Rendering** (MICRO 2024) —
//! an end-to-end NeRF accelerator with instant (≤ 2 s) training,
//! real-time (≥ 30 FPS) rendering, USB-class (0.6 GB/s) off-chip
//! bandwidth, and a four-chip Mixture-of-Experts system for
//! large-scale scenes.
//!
//! This façade crate re-exports the workspace:
//!
//! * [`nerf`] — the Instant-NGP-style algorithm substrate: hash-grid
//!   encoding, tiny MLPs, occupancy-gated sampling, differentiable
//!   volume rendering, training, and procedural datasets;
//! * [`arith`] — mixed-precision arithmetic: soft floats, binary16,
//!   and the FIEM FP×INT multiplier with its gate-level cost model;
//! * [`mem`] — SRAM banks, the two-level hash tiling that makes
//!   feature fetches conflict-free, and interconnect cost models;
//! * [`core`] — the single-chip accelerator: cycle-level simulators of
//!   all three pipeline stages, energy/area models calibrated to the
//!   28 nm silicon measurements, and bandwidth analysis;
//! * [`multichip`] — the MoE NeRF model and the four-chip system;
//! * [`baselines`] — published specs of every comparison device;
//! * [`par`] — the deterministic multi-core execution layer: frame
//!   rendering, training steps, and scene sweeps fan out across a
//!   work-stealing pool (`FUSION3D_THREADS` sets the worker count)
//!   while producing bitwise-identical results at any thread count;
//! * [`obs`] — the deterministic observability layer: simulated-cycle
//!   span traces, typed counters/gauges/histograms, and JSON-lines +
//!   table report rendering (see `docs/OBSERVABILITY.md`).
//!
//! ## Determinism contract
//!
//! Every result-bearing quantity in the workspace — rendered pixels,
//! trained parameters, simulated cycles, recorded metrics — is a pure
//! function of explicit inputs: bitwise-identical across runs,
//! machines, and `FUSION3D_THREADS` settings. No wall-clock time, no
//! unseeded randomness, no iteration over unordered containers. The
//! `fusion3d-lint` binary enforces the supporting bans statically.
//!
//! ## Quickstart
//!
//! Train a small field on a procedural scene and consult the simulated
//! chip:
//!
//! ```
//! use fusion3d::nerf::{Dataset, ModelConfig, NerfModel, ProceduralScene,
//!                      SyntheticScene, Trainer, TrainerConfig};
//! use fusion3d::core::chip::FusionChip;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
//! let dataset = Dataset::from_scene(&scene, 4, 16, 0.9);
//! let mut trainer = Trainer::new(
//!     NerfModel::new(ModelConfig::default(), &mut rng),
//!     TrainerConfig::default(),
//! );
//! trainer.step(&dataset, &mut rng);
//!
//! let chip = FusionChip::scaled_up();
//! assert!(chip.peak_inference_points_per_second() > 5e8);
//! ```
//!
//! See the `examples/` directory for full scenarios and
//! `fusion3d-bench` for the per-table/figure experiment harness.

#![warn(missing_docs)]

pub use fusion3d_arith as arith;
pub use fusion3d_baselines as baselines;
pub use fusion3d_core as core;
pub use fusion3d_mem as mem;
pub use fusion3d_multichip as multichip;
pub use fusion3d_nerf as nerf;
pub use fusion3d_obs as obs;
pub use fusion3d_par as par;
