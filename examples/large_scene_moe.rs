//! Large-scale scenes on the four-chip Mixture-of-Experts system.
//!
//! Trains a four-expert MoE NeRF (the Technique T3 model — one
//! complete small model per chip, fused by pixel addition) on a
//! NeRF-360-class procedural scene, compares it against a single model
//! of the same total capacity, and then simulates the four-chip
//! system's performance and communication on the trained gates.
//!
//! ```text
//! cargo run --release --example large_scene_moe
//! ```

use fusion3d::multichip::comm::{layer_split_bytes, moe_bytes, FrameWorkload};
use fusion3d::multichip::moe::{MoeNerf, MoeTrainer};
use fusion3d::multichip::system::MultiChipSystem;
use fusion3d::nerf::adam::AdamConfig;
use fusion3d::nerf::encoding::HashGridConfig;
use fusion3d::nerf::{
    Dataset, LargeScene, ModelConfig, NerfModel, ProceduralScene, SamplerConfig, Trainer,
    TrainerConfig, Vec3,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn expert_config(log2_table: u32) -> ModelConfig {
    ModelConfig {
        grid: HashGridConfig {
            levels: 4,
            features_per_level: 2,
            log2_table_size: log2_table,
            base_resolution: 4,
            max_resolution: 32,
        },
        hidden_dim: 16,
        geo_feature_dim: 7,
    }
}

fn main() {
    let scene = ProceduralScene::large(LargeScene::Room);
    let dataset = Dataset::from_scene(&scene, 6, 24, 0.9);
    let config = TrainerConfig {
        rays_per_batch: 64,
        sampler: SamplerConfig { steps_per_diagonal: 48, max_samples_per_ray: 32 },
        occupancy_resolution: 16,
        occupancy_update_interval: 24,
        occupancy_warmup: 60,
        background: Vec3::new(0.55, 0.7, 0.9),
        ..TrainerConfig::default()
    };
    let iterations = 300;

    // Single large model: hash tables of 2^12 entries.
    let mut rng = SmallRng::seed_from_u64(1);
    let mut single = Trainer::new(NerfModel::new(expert_config(12), &mut rng), config);
    for _ in 0..iterations {
        single.step(&dataset, &mut rng);
    }
    let single_psnr = single.evaluate_psnr(&dataset);
    println!("Single 2^12 model:   PSNR {single_psnr:.2} dB");

    // MoE: four experts with 2^10 tables each (same total capacity).
    let mut rng = SmallRng::seed_from_u64(2);
    let moe = MoeNerf::new(4, expert_config(10), 16, config.occupancy_threshold, &mut rng);
    println!(
        "MoE 4 x 2^10 model:  {} parameters across {} experts",
        moe.param_count(),
        moe.expert_count()
    );
    let mut trainer = MoeTrainer::new(moe, config, AdamConfig::default());
    for _ in 0..iterations {
        trainer.step(&dataset, &mut rng);
    }
    let moe_psnr = trainer.evaluate_psnr(&dataset);
    println!("MoE 4 x 2^10 model:  PSNR {moe_psnr:.2} dB (Δ {:+.2} dB)", moe_psnr - single_psnr);

    // Expert specialization: per-expert occupancy after training.
    let moe = trainer.into_moe();
    for (i, expert) in moe.experts().iter().enumerate() {
        println!(
            "  expert {i}: occupancy {:.0}% of the model cube",
            expert.occupancy.occupancy_ratio() * 100.0
        );
    }

    // Simulate the four-chip system on the trained gates.
    let system = MultiChipSystem::fusion3d();
    let view = &dataset.views()[0];
    let per_chip = moe.per_chip_workloads(&view.camera, &config.sampler);
    let report = system.simulate(&per_chip, false);
    println!(
        "\nFour-chip inference: {:.2} ms/frame at this resolution, imbalance {:.2}, \
         {:.1} uJ/frame",
        report.total_seconds * 1e3,
        report.imbalance(),
        report.energy_j * 1e6
    );

    // Communication: MoE Level-1 tiling vs a layer-split mapping.
    let workload = FrameWorkload {
        rays: view.camera.pixel_count(),
        samples: per_chip.iter().flatten().map(|w| w.total_samples() as u64).sum(),
        feature_dim: 8,
        training: false,
    };
    let moe_traffic = moe_bytes(&workload, 4);
    let split_traffic = layer_split_bytes(&workload, 4);
    println!(
        "Chip-to-chip traffic: MoE {:.1} KB vs layer-split {:.1} KB ({:.0}% saving)",
        moe_traffic as f64 / 1024.0,
        split_traffic as f64 / 1024.0,
        (1.0 - moe_traffic as f64 / split_traffic as f64) * 100.0
    );
}
