//! The mixed-precision study behind Technique T2-2: INT8 quantization
//! is fine for a *trained* model but poisons training itself (the
//! paper's Table II), which is why the accelerator keeps a
//! floating-point training datapath and only narrows inference.
//!
//! ```text
//! cargo run --release --example quantization_study
//! ```

use fusion3d::arith::half::round_trip_f16;
use fusion3d::nerf::encoding::HashGridConfig;
use fusion3d::nerf::pipeline::{render_image, PipelineConfig};
use fusion3d::nerf::quant::{quantize_model_int8, train_with_quantization, QuantSchedule};
use fusion3d::nerf::{
    Dataset, ModelConfig, NerfModel, ProceduralScene, SamplerConfig, SyntheticScene, Trainer,
    TrainerConfig,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn model_config() -> ModelConfig {
    ModelConfig {
        grid: HashGridConfig {
            levels: 4,
            features_per_level: 2,
            log2_table_size: 11,
            base_resolution: 4,
            max_resolution: 32,
        },
        hidden_dim: 16,
        geo_feature_dim: 7,
    }
}

fn trainer_config() -> TrainerConfig {
    TrainerConfig {
        rays_per_batch: 96,
        sampler: SamplerConfig { steps_per_diagonal: 48, max_samples_per_ray: 32 },
        occupancy_resolution: 16,
        occupancy_update_interval: 24,
        occupancy_warmup: 48,
        ..TrainerConfig::default()
    }
}

fn main() {
    let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
    let dataset = Dataset::from_scene(&scene, 6, 24, 0.9);
    let iterations = 280;

    // Part 1: quantization *during* training (Table II protocol).
    println!("INT8 quantization during training ({iterations} iterations):");
    for schedule in [
        QuantSchedule::Never,
        QuantSchedule::Every(iterations / 5),
        QuantSchedule::Every(iterations / 25),
        QuantSchedule::Every(1),
    ] {
        let mut rng = SmallRng::seed_from_u64(5);
        let model = NerfModel::new(model_config(), &mut rng);
        let mut train_rng = SmallRng::seed_from_u64(6);
        let result = train_with_quantization(
            model,
            &dataset,
            trainer_config(),
            schedule,
            iterations,
            &mut train_rng,
        );
        println!(
            "  quantize {:<12} -> {}",
            schedule.label(),
            if result.diverged {
                "not convergent".to_string()
            } else {
                format!("{:.2} dB", result.psnr)
            }
        );
    }

    // Part 2: quantization of the *finished* model — post-training
    // INT8 and f16 inference are nearly free, which is what lets the
    // inference datapath run narrow.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut trainer = Trainer::new(NerfModel::new(model_config(), &mut rng), trainer_config());
    for _ in 0..iterations {
        trainer.step(&dataset, &mut rng);
    }
    let float_psnr = trainer.evaluate_psnr(&dataset);

    let pipeline = PipelineConfig {
        sampler: trainer.config().sampler,
        background: trainer.config().background,
        early_stop: false,
    };
    let (mut model, occupancy) = trainer.into_parts();
    // Keep pristine f32 copies for the like-for-like baseline below.
    let model_f32_grid = model.grid().params().to_vec();
    let model_f32_density = model.density_mlp().params().to_vec();
    let model_f32_color = model.color_mlp().params().to_vec();

    let mut f16_model = model.clone();
    round_trip_f16(f16_model.grid_mut().params_mut());
    round_trip_f16(f16_model.density_mlp_mut().params_mut());
    round_trip_f16(f16_model.color_mlp_mut().params_mut());
    quantize_model_int8(&mut model);

    let reference = &dataset.views()[0];
    let float_view = {
        // Re-render the same single view with the unmodified f32
        // parameters for a like-for-like comparison.
        let mut pristine = f16_model.clone();
        pristine.grid_mut().params_mut().copy_from_slice(model_f32_grid.as_slice());
        pristine.density_mlp_mut().params_mut().copy_from_slice(model_f32_density.as_slice());
        pristine.color_mlp_mut().params_mut().copy_from_slice(model_f32_color.as_slice());
        render_image_of(&pristine, &occupancy, reference, &pipeline).psnr(&reference.image)
    };
    let f16_psnr =
        render_image_of(&f16_model, &occupancy, reference, &pipeline).psnr(&reference.image);
    let int8_psnr =
        render_image_of(&model, &occupancy, reference, &pipeline).psnr(&reference.image);

    println!("\nPost-training quantization (render quality on the same held view):");
    println!("  mean PSNR over all views (f32): {float_psnr:.2} dB");
    println!("  f32-stored model:  {float_view:.2} dB");
    println!("  f16-stored model:  {f16_psnr:.2} dB (d {:+.2})", f16_psnr - float_view);
    println!("  INT8-stored model: {int8_psnr:.2} dB (d {:+.2})", int8_psnr - float_view);
    println!(
        "\nConclusion: post-training narrowing is benign, per-iteration\n\
         quantization is not — training needs floating point (Technique T2-2)."
    );
}

fn render_image_of(
    model: &NerfModel,
    occupancy: &fusion3d::nerf::OccupancyGrid,
    view: &fusion3d::nerf::dataset::View,
    pipeline: &PipelineConfig,
) -> fusion3d::nerf::Image {
    render_image(model, occupancy, &view.camera, pipeline)
}
