//! Quickstart: instant reconstruction and real-time rendering of a
//! procedural scene, end to end.
//!
//! The example trains a compact NeRF on a NeRF-Synthetic-class
//! procedural scene, reports PSNR against held-out views, and then
//! replays the frame's Stage-I workload through the cycle-level chip
//! simulator to estimate what the scaled-up Fusion-3D accelerator
//! would deliver on it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fusion3d::core::chip::FusionChip;
use fusion3d::nerf::pipeline::trace_frame;
use fusion3d::nerf::{
    Dataset, ModelConfig, NerfModel, ProceduralScene, SyntheticScene, Trainer, TrainerConfig,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
    println!("Scene: {} ({} SDF primitives)", scene.name(), scene.primitive_count());

    // 1. Render a ground-truth dataset of posed views.
    let dataset = Dataset::from_scene(&scene, 8, 32, 0.9);
    println!("Dataset: {} views, {} rays total", dataset.views().len(), dataset.total_rays());

    // 2. Instant reconstruction: train the hash-grid field.
    let mut rng = SmallRng::seed_from_u64(42);
    let model = NerfModel::new(ModelConfig::default(), &mut rng);
    println!("Model: {} parameters", model.param_count());
    let mut trainer = Trainer::new(model, TrainerConfig::default());
    let started = Instant::now();
    let iterations = 400;
    for i in 0..iterations {
        let stats = trainer.step(&dataset, &mut rng);
        if (i + 1) % 100 == 0 {
            println!(
                "  iter {:>4}: loss {:.5}, {} samples, occupancy {:.0}%",
                i + 1,
                stats.loss,
                stats.samples,
                trainer.occupancy().occupancy_ratio() * 100.0
            );
        }
    }
    let elapsed = started.elapsed();
    let psnr = trainer.evaluate_psnr(&dataset);
    println!("Trained {iterations} iterations in {elapsed:.2?}; PSNR {psnr:.2} dB");

    // 3. Real-time rendering: replay the frame through the simulated
    //    chip.
    let view = &dataset.views()[0];
    let trace = trace_frame(trainer.occupancy(), &view.camera, &trainer.config().sampler);
    let chip = FusionChip::scaled_up();
    let report = chip.simulate_frame(&trace);
    // Scale the small trace to the paper's 800x800 frames.
    let scale = 800.0 * 800.0 / trace.ray_count() as f64;
    let frame_s = report.seconds * scale;
    println!(
        "Chip simulation: {:.1} M samples/s sustained; an 800x800 frame of this \
         scene takes {:.2} ms ({:.0} FPS)",
        report.points_per_second() / 1e6,
        frame_s * 1e3,
        1.0 / frame_s
    );
    let train_step = chip.simulate_training_step(&trace);
    println!(
        "Training on-chip: {:.1} M samples/s ({:.1}x slower than inference)",
        train_step.points_per_second() / 1e6,
        report.points_per_second() / train_step.points_per_second()
    );
}
