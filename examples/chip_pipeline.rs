//! A tour of the single-chip accelerator's internals: per-stage cycle
//! budgets, scheduling policies, bank mappings, the FIEM datapath, and
//! the voltage–frequency operating range.
//!
//! ```text
//! cargo run --release --example chip_pipeline
//! ```

use fusion3d::arith::cost::{compare_fiem, WEIGHT_BITS};
use fusion3d::arith::fiem::{fiem_mul, int2fp_fpmul};
use fusion3d::core::chip::FusionChip;
use fusion3d::core::config::{frequency_at_voltage_mhz, Module};
use fusion3d::core::sampling::{simulate_sampling, SamplingModuleConfig, SchedulingPolicy};
use fusion3d::mem::banks::{group_from_addresses, simulate_groups, BankMapping, VertexRequest};
use fusion3d::nerf::camera::{orbit_poses, Camera};
use fusion3d::nerf::pipeline::trace_frame;
use fusion3d::nerf::{ProceduralScene, SamplerConfig, SyntheticScene, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let chip = FusionChip::scaled_up();
    let cfg = chip.config();
    println!(
        "Fusion-3D scaled-up chip: {:.1} mm^2, {:.0} KB SRAM, {:.0} MHz, {:.2} W",
        cfg.die_area_mm2,
        cfg.total_sram_kb(),
        cfg.clock_mhz,
        cfg.typical_power_w
    );
    println!("\nModule breakdown:");
    for m in Module::ALL {
        println!(
            "  {:<16} {:>5.2} mm^2  {:>6.3} W",
            m.name(),
            cfg.module_area_mm2(m),
            cfg.module_power_w(m)
        );
    }

    // Stage-level view of one frame.
    let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
    let occ = scene.occupancy_grid(32);
    let pose = orbit_poses(Vec3::new(0.5, 0.4, 0.5), 1.25, 8)[2];
    let camera = Camera::new(pose, 128, 128, 0.9);
    let sampler = SamplerConfig { steps_per_diagonal: 512, max_samples_per_ray: 256 };
    let trace = trace_frame(&occ, &camera, &sampler);
    let frame = chip.simulate_frame(&trace);
    println!(
        "\nFrame on '{}': {} rays, {} samples",
        scene.name(),
        trace.ray_count(),
        trace.total_samples
    );
    println!(
        "  Stage I {:>9} cycles | Stage II {:>9} cycles | Stage III {:>9} cycles -> {:?} bound",
        frame.stages.sampling,
        frame.stages.interpolation,
        frame.stages.post_processing,
        frame.stages.bottleneck()
    );

    // Scheduling policies on the same Stage-I workload.
    println!("\nSampling-module scheduling (same workload):");
    for (name, policy) in [
        ("ray-batch (baseline)", SchedulingPolicy::RayBatch),
        ("pair-by-pair", SchedulingPolicy::PairByPair),
        ("dynamic whole-ray (T1-2)", SchedulingPolicy::DynamicWholeRay),
    ] {
        let cfg = SamplingModuleConfig { policy, ..SamplingModuleConfig::fusion3d() };
        let r = simulate_sampling(&cfg, &trace.workloads);
        println!(
            "  {:<26} {:>9} cycles, {:>5.1}% core utilization",
            name,
            r.cycles,
            r.core_utilization(cfg.cores) * 100.0
        );
    }

    // Bank mappings on real hash-grid access groups: the eight corner
    // addresses of random query points, exactly what Stage II fetches.
    let grid = fusion3d::nerf::HashGrid::new(fusion3d::nerf::HashGridConfig {
        levels: 8,
        features_per_level: 2,
        log2_table_size: 14,
        base_resolution: 32,
        max_resolution: 1024,
    });
    let mut rng = SmallRng::seed_from_u64(3);
    let mut accesses = Vec::new();
    let mut groups: Vec<[VertexRequest; 8]> = Vec::new();
    for _ in 0..250 {
        let p = Vec3::new(rng.gen(), rng.gen(), rng.gen());
        accesses.clear();
        grid.record_accesses(p, &mut accesses);
        for level in accesses.chunks(8) {
            let mut addrs = [0u32; 8];
            for (slot, a) in addrs.iter_mut().zip(level) {
                *slot = a.address;
            }
            groups.push(group_from_addresses(addrs));
        }
    }
    let refs: Vec<&[VertexRequest]> = groups.iter().map(|g| g.as_slice()).collect();
    println!("\nStage-II bank behaviour over {} fetch groups:", groups.len());
    for (name, mapping) in [
        ("naive low-order bits", BankMapping::LowOrderBits),
        ("two-level tiling (T4)", BankMapping::TwoLevelTiling),
    ] {
        let s = simulate_groups(mapping, refs.iter().copied());
        println!(
            "  {:<24} mean {:.2} cycles, variance {:.3}, conflicts {}",
            name,
            s.mean_cycles(),
            s.variance,
            s.conflict_cycles
        );
    }

    // The FIEM datapath: bit-exact and cheaper.
    let (f, i) = (0.8173f32, 741);
    assert_eq!(fiem_mul(f, i).to_bits(), int2fp_fpmul(f, i).to_bits());
    let cmp = compare_fiem(WEIGHT_BITS);
    println!(
        "\nFIEM at {WEIGHT_BITS}-bit weights: bit-exact vs INT2FP+FPMUL, \
         {:.0}% area / {:.0}% power saving",
        cmp.area_saving * 100.0,
        cmp.power_saving * 100.0
    );

    // Voltage-frequency operating range.
    println!("\nMeasured V/F curve:");
    for v in [0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.1] {
        println!("  {v:.2} V -> {:>4.0} MHz", frequency_at_voltage_mhz(v));
    }
}
