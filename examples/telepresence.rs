//! The paper's Fig. 1 scenario end to end: virtual telepresence.
//!
//! A sender captures a scene (posed views), reconstructs it instantly,
//! and streams the compact model over a USB-class link; the receiver
//! decodes it and renders novel views — color and depth — in real
//! time. Every stage is timed and sized against the paper's budgets:
//! ≤ 2 s reconstruction, ~10 MB-class model, ≥ 30 FPS rendering on
//! the simulated chip.
//!
//! ```text
//! cargo run --release --example telepresence
//! ```

use fusion3d::core::chip::FusionChip;
use fusion3d::nerf::camera::{orbit_poses, Camera};
use fusion3d::nerf::io::{decode_model_into, encode_model, Precision};
use fusion3d::nerf::pipeline::{render_depth_image, render_image, trace_frame, PipelineConfig};
use fusion3d::nerf::{
    Dataset, ModelConfig, NerfModel, ProceduralScene, SamplerConfig, SyntheticScene, Trainer,
    TrainerConfig, Vec3,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // --- Sender side -------------------------------------------------
    let scene = ProceduralScene::synthetic(SyntheticScene::Chair);
    println!("[sender] capturing '{}'...", scene.name());
    let dataset = Dataset::from_scene(&scene, 8, 32, 0.9);

    let mut rng = SmallRng::seed_from_u64(7);
    let model = NerfModel::new(ModelConfig::default(), &mut rng);
    let mut trainer = Trainer::new(model, TrainerConfig::default());
    let t0 = Instant::now();
    for _ in 0..400 {
        trainer.step(&dataset, &mut rng);
    }
    let train_time = t0.elapsed();
    let psnr = trainer.evaluate_psnr(&dataset);
    println!(
        "[sender] reconstructed in {train_time:.2?} (CPU) at {psnr:.2} dB; the chip \
         does the same sample budget in well under 2 s"
    );

    // Stream the model: f16 container over the 0.625 GB/s link.
    let (model, occupancy) = trainer.into_parts();
    let container = encode_model(&model, &occupancy, Precision::F16);
    let link_seconds = container.len() as f64 / 0.625e9;
    println!(
        "[link]   {:.2} MB model streams in {:.2} ms over USB 3.2 Gen 1",
        container.len() as f64 / 1e6,
        link_seconds * 1e3
    );

    // --- Receiver side -----------------------------------------------
    let mut rng = SmallRng::seed_from_u64(0);
    let mut received = NerfModel::new(ModelConfig::default(), &mut rng);
    let occupancy = decode_model_into(&container, &mut received).expect("valid container");

    // A novel viewpoint the sender never rendered.
    let pose = orbit_poses(Vec3::new(0.5, 0.4, 0.5), 1.4, 16)[9];
    let camera = Camera::new(pose, 64, 64, 0.85);
    let config = PipelineConfig {
        sampler: SamplerConfig { steps_per_diagonal: 128, max_samples_per_ray: 96 },
        background: scene.background(),
        early_stop: true,
    };
    let t1 = Instant::now();
    let color = render_image(&received, &occupancy, &camera, &config);
    let depth = render_depth_image(&received, &occupancy, &camera, &config);
    println!(
        "[receiver] novel view + depth rendered in {:.2?} at 64x64 (CPU reference)",
        t1.elapsed()
    );
    std::fs::write("/tmp/telepresence_color.ppm", color.to_ppm()).ok();
    std::fs::write("/tmp/telepresence_depth.ppm", depth.to_ppm()).ok();
    println!("[receiver] wrote /tmp/telepresence_color.ppm and _depth.ppm");

    // The receiver's chip-rate projection.
    let trace = trace_frame(&occupancy, &camera, &config.sampler);
    let chip = FusionChip::scaled_up();
    let report = chip.simulate_frame(&trace);
    let scale = 800.0 * 800.0 / trace.ray_count() as f64;
    let fps = 1.0 / (report.seconds * scale);
    println!(
        "[receiver] on the Fusion-3D chip this view runs at {fps:.0} FPS at 800x800 \
         ({:.1} M pts/s sustained)",
        report.points_per_second() / 1e6
    );
    println!(
        "\nBudgets: reconstruction {} | model {} | rendering {}",
        if train_time.as_secs_f64() < 30.0 { "OK (chip: <2 s)" } else { "over" },
        if container.len() < 12_000_000 { "OK (<12 MB)" } else { "over" },
        if fps > 30.0 { "OK (>30 FPS)" } else { "over" },
    );
}
