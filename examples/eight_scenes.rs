//! Sweeps the eight NeRF-Synthetic-class scenes through the single-chip
//! simulator: per-scene workload statistics, sustained throughput, FPS
//! at 800×800, and the Technique T1 sampling-ablation speedup — the
//! workloads behind Table III, Fig. 11, and Table VI.
//!
//! ```text
//! cargo run --release --example eight_scenes
//! ```

use fusion3d::core::chip::FusionChip;
use fusion3d::core::sampling::t1_speedup;
use fusion3d::nerf::camera::{orbit_poses, Camera};
use fusion3d::nerf::pipeline::trace_frame;
use fusion3d::nerf::{ProceduralScene, SamplerConfig, SyntheticScene, Vec3};
use fusion3d::par::Pool;

fn main() {
    let chip = FusionChip::scaled_up();
    let sampler = SamplerConfig { steps_per_diagonal: 512, max_samples_per_ray: 256 };
    let pose = orbit_poses(Vec3::new(0.5, 0.4, 0.5), 1.25, 8)[2];
    let camera = Camera::new(pose, 160, 160, 0.9);
    let scale = 800.0 * 800.0 / (160.0 * 160.0);

    // Fan the independent per-scene simulations out across the worker
    // pool (FUSION3D_THREADS); results come back in scene order.
    let scenes = SyntheticScene::ALL;
    let rows = Pool::new().parallel_chunks(scenes.len(), 1, |index, _| {
        let kind = scenes[index];
        let scene = ProceduralScene::synthetic(kind);
        let occupancy = scene.occupancy_grid(32);
        let trace = trace_frame(&occupancy, &camera, &sampler);
        let report = chip.simulate_frame(&trace);
        let fps = 1.0 / (report.seconds * scale);
        format!(
            "{:>10} {:>8.1} {:>10.1} {:>10.0} {:>10.1} {:>8.0} {:>7.1}x",
            kind.name(),
            occupancy.occupancy_ratio() * 100.0,
            trace.mean_samples_per_ray(),
            trace.hit_rate() * 100.0,
            report.points_per_second() / 1e6,
            fps,
            t1_speedup(&trace.workloads),
        )
    });

    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "scene", "occ %", "smp/ray", "hit %", "M pts/s", "FPS", "T1 gain"
    );
    for row in rows {
        println!("{row}");
    }
    println!(
        "\nSparse scenes (mic, ficus) render fastest and gain the most from\n\
         Technique T1; dense scenes (ship) are Stage-II bound, matching the\n\
         paper's Table VI spread."
    );
}
